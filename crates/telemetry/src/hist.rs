//! Lock-free log2-bucket histograms.
//!
//! Values are recorded into power-of-two buckets with atomic counters, so
//! recording is a single relaxed fetch-add. Floating-point values (rewards,
//! IPC) are scaled to fixed-point micro-units first. Percentile queries
//! return the upper bound of the bucket containing the target rank, which
//! makes them monotone in the requested percentile by construction.

use std::sync::atomic::{AtomicU64, Ordering};

/// Scale factor mapping f64 measurements into integer micro-units.
const MICRO: f64 = 1e6;

/// Number of buckets: one for zero plus one per possible leading-bit
/// position of a `u64`.
pub const BUCKETS: usize = 65;

/// Every histogram tracked by the recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Raw per-step rewards handed to the bandit agent (micro-units).
    Reward,
    /// Per-epoch IPC observed by the SMT controllers (micro-units).
    EpochIpc,
    /// Demand-miss service latency in cycles.
    MissLatency,
}

impl Hist {
    /// Number of distinct histograms.
    pub const COUNT: usize = 3;

    /// All histograms, in declaration order.
    pub const ALL: [Hist; Hist::COUNT] = [Hist::Reward, Hist::EpochIpc, Hist::MissLatency];

    /// Stable snake_case name used by the exporters.
    pub const fn name(self) -> &'static str {
        match self {
            Hist::Reward => "reward",
            Hist::EpochIpc => "epoch_ipc",
            Hist::MissLatency => "miss_latency",
        }
    }
}

/// A single lock-free histogram.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

#[inline]
fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one integer observation (lock-free).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records one floating-point observation in micro-units. Negative and
    /// non-finite values clamp to zero.
    #[inline]
    pub fn record_f64(&self, value: f64) {
        let scaled = if value.is_finite() && value > 0.0 {
            (value * MICRO) as u64
        } else {
            0
        };
        self.record(scaled);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of recorded observations (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Mean in original (pre-[`Histogram::record_f64`]) units.
    pub fn mean_f64(&self) -> f64 {
        self.mean() / MICRO
    }

    /// Upper bound of the bucket containing the `p`-quantile (`p` in 0..=1).
    /// Returns 0 for an empty histogram. Monotone in `p`.
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        let target = ((p * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.buckets[i].load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// [`Histogram::percentile`] in original units.
    pub fn percentile_f64(&self, p: f64) -> f64 {
        self.percentile(p) as f64 / MICRO
    }

    /// Per-bucket counts (used by exporters and tests).
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&self, other: &Histogram) {
        for i in 0..BUCKETS {
            let v = other.buckets[i].load(Ordering::Relaxed);
            if v != 0 {
                self.buckets[i].fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_line() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..64 {
            assert!(bucket_upper(i) > bucket_upper(i - 1));
        }
    }

    #[test]
    fn percentiles_bracket_the_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        assert!(p50 >= 500, "p50 {p50}");
        assert!(p99 >= 990, "p99 {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn f64_values_round_trip_through_micro_units() {
        let h = Histogram::new();
        h.record_f64(1.5);
        h.record_f64(-3.0); // clamps to 0
        h.record_f64(f64::NAN); // clamps to 0
        assert_eq!(h.count(), 3);
        let p100 = h.percentile_f64(1.0);
        assert!(p100 >= 1.5, "p100 {p100}");
    }

    #[test]
    fn merge_accumulates_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..10 {
            a.record(v);
            b.record(v * 100);
        }
        a.merge(&b);
        assert_eq!(a.count(), 20);
        assert!(a.percentile(1.0) >= 900);
    }
}
