//! Run-scoped aggregation and reporting for the span profiler.
//!
//! Each simulator run executes inside [`collect_run`], which resets the
//! calling thread's span tree, opens a [`Category::Run`] span around the
//! job, and drains the finished tree into a process-wide merge registry.
//! Because every run starts from an identical empty tree (same node ids,
//! same sampling phases) and merging is a commutative sum keyed by span
//! path, the merged profile of a sweep is independent of worker count and
//! scheduling order: `--jobs 1` and `--jobs 8` produce identical counts.
//!
//! [`snapshot`] combines the registry with whatever accumulated on the
//! current thread outside `collect_run` (e.g. serial trace recording) into
//! a [`ProfileReport`], which can render itself as a flamegraph-compatible
//! collapsed-stack file.

use crate::span::{self, Category, SpanTotals};
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::Mutex;

/// Process-wide merge registry: totals per span path, summed over every
/// completed [`collect_run`].
static MERGED: Mutex<BTreeMap<String, SpanTotals>> = Mutex::new(BTreeMap::new());

/// Turns runtime profiling on or off. A no-op (stays off) without the `on`
/// cargo feature. While off, every `span!` guard costs one relaxed load.
pub fn set_enabled(on: bool) {
    span::set_profiling(on);
}

/// True when spans are compiled in *and* runtime profiling is on.
#[inline]
pub fn enabled() -> bool {
    crate::STATIC_ENABLED && span::profiling_runtime()
}

/// Clears the merge registry and the current thread's span tree.
pub fn reset() {
    if !crate::STATIC_ENABLED {
        return;
    }
    MERGED.lock().unwrap().clear();
    span::reset_thread();
}

/// Runs `f` as one profiled simulator run: fresh thread tree, a `run` root
/// span, and a drain into the merge registry afterwards. When profiling is
/// off this is exactly `f()`.
pub fn collect_run<R>(f: impl FnOnce() -> R) -> R {
    if !enabled() {
        return f();
    }
    debug_assert_eq!(
        span::stack_depth(),
        0,
        "collect_run entered with live spans on this thread"
    );
    span::reset_thread();
    let result = {
        let _run = span::enter(Category::Run, 0);
        f()
    };
    drain_thread();
    result
}

/// Drains the current thread's span tree into the merge registry and resets
/// the tree.
fn drain_thread() {
    let mut merged = MERGED.lock().unwrap();
    span::flatten_thread_into(&mut merged);
    drop(merged);
    span::reset_thread();
}

/// A merged, path-keyed profile. Paths are `;`-separated frame names
/// (`run;cache_access;dram_queue`), ordered lexicographically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileReport {
    /// Totals per span path.
    pub spans: BTreeMap<String, SpanTotals>,
}

/// The merged profile so far: registry plus the current thread's
/// still-accumulating tree. Non-destructive, so it can be taken once for
/// the collapsed file and again by the JSONL exporter.
pub fn snapshot() -> ProfileReport {
    let mut spans = if crate::STATIC_ENABLED {
        MERGED.lock().unwrap().clone()
    } else {
        BTreeMap::new()
    };
    if crate::STATIC_ENABLED {
        span::flatten_thread_into(&mut spans);
    }
    ProfileReport { spans }
}

impl ProfileReport {
    /// True when no span was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Accumulates `other` into `self` (path-wise sum).
    pub fn merge(&mut self, other: &ProfileReport) {
        for (path, totals) in &other.spans {
            self.spans.entry(path.clone()).or_default().add(totals);
        }
    }

    /// Estimated *self* nanoseconds per path: the path's extrapolated total
    /// minus its direct children's, clamped at zero (sampling noise can
    /// make children sum past their parent).
    pub fn self_ns(&self) -> BTreeMap<String, u64> {
        let mut out: BTreeMap<String, u64> = self
            .spans
            .iter()
            .map(|(path, totals)| (path.clone(), totals.estimated_ns()))
            .collect();
        for (path, totals) in &self.spans {
            let children: u64 = self
                .direct_children(path)
                .map(|(_, t)| t.estimated_ns())
                .sum();
            out.insert(path.clone(), totals.estimated_ns().saturating_sub(children));
        }
        out
    }

    /// Direct children of `path` (one more frame, same prefix).
    pub fn direct_children<'a>(
        &'a self,
        path: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a SpanTotals)> + 'a {
        self.spans.iter().filter_map(move |(p, t)| {
            let rest = p.strip_prefix(path)?.strip_prefix(';')?;
            if rest.contains(';') {
                None
            } else {
                Some((p.as_str(), t))
            }
        })
    }

    /// Estimated nanoseconds across all top-level spans — the denominator
    /// for percent-of-run figures.
    pub fn total_estimated_ns(&self) -> u64 {
        self.spans
            .iter()
            .filter(|(path, _)| !path.contains(';'))
            .map(|(_, t)| t.estimated_ns())
            .sum()
    }

    /// Writes the profile as collapsed stacks: one `path;path;frame N` line
    /// per span with nonzero estimated self-time, where N is self-time in
    /// nanoseconds. The format loads directly in `inferno-flamegraph`,
    /// speedscope and the original `flamegraph.pl`.
    pub fn write_collapsed<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for (path, self_ns) in self.self_ns() {
            if self_ns > 0 {
                writeln!(w, "{path} {self_ns}")?;
            }
        }
        Ok(())
    }

    /// [`ProfileReport::write_collapsed`] to a file.
    pub fn write_collapsed_to_path(&self, path: &std::path::Path) -> io::Result<()> {
        let mut file = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_collapsed(&mut file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profiling is a process-wide switch; tests that flip it serialize
    /// through this lock so cargo's parallel test runner can't interleave
    /// them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn report(paths: &[(&str, u64, u64, u64)]) -> ProfileReport {
        let mut spans = BTreeMap::new();
        for &(path, count, timed, total_ns) in paths {
            spans.insert(
                path.to_string(),
                SpanTotals {
                    count,
                    timed,
                    total_ns,
                },
            );
        }
        ProfileReport { spans }
    }

    #[test]
    fn disarmed_guard_is_inert() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        let r = collect_run(|| {
            let _g = span::enter(Category::CacheAccess, 0);
            42
        });
        assert_eq!(r, 42);
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let r = report(&[
            ("run", 1, 1, 1_000),
            ("run;cache_access", 10, 10, 600),
            ("run;cache_access;dram_queue", 10, 10, 200),
        ]);
        let self_ns = r.self_ns();
        assert_eq!(self_ns["run"], 400);
        assert_eq!(self_ns["run;cache_access"], 400);
        assert_eq!(self_ns["run;cache_access;dram_queue"], 200);
        assert_eq!(r.total_estimated_ns(), 1_000);
    }

    #[test]
    fn self_time_clamps_when_children_exceed_parent() {
        let r = report(&[("run", 1, 1, 100), ("run;cache_access", 4, 2, 300)]);
        // Child extrapolates to 600ns > parent's 100ns: clamp, don't wrap.
        assert_eq!(r.self_ns()["run"], 0);
    }

    #[test]
    fn merge_is_a_pathwise_sum() {
        let mut a = report(&[("run", 1, 1, 100), ("run;fetch", 5, 5, 50)]);
        let b = report(&[("run", 1, 1, 200), ("run;rename", 2, 2, 20)]);
        a.merge(&b);
        assert_eq!(a.spans["run"].count, 2);
        assert_eq!(a.spans["run"].total_ns, 300);
        assert_eq!(a.spans["run;fetch"].count, 5);
        assert_eq!(a.spans["run;rename"].count, 2);
    }

    #[test]
    fn collapsed_output_is_valid_path_count_lines() {
        let r = report(&[
            ("run", 1, 1, 1_000),
            ("run;cache_access", 10, 10, 600),
            ("run;cache_access;dram_queue", 10, 10, 200),
        ]);
        let mut out = Vec::new();
        r.write_collapsed(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        for line in &lines {
            let (stack, count) = line.rsplit_once(' ').unwrap();
            assert!(!stack.is_empty());
            assert!(stack.split(';').all(|f| !f.is_empty()), "{line}");
            count.parse::<u64>().unwrap();
        }
        assert!(text.contains("run;cache_access;dram_queue 200"), "{text}");
    }

    #[cfg(feature = "on")]
    #[test]
    fn collect_run_merges_identically_regardless_of_threading() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset();

        let job = |spins: u64| {
            collect_run(|| {
                for _ in 0..spins {
                    let _a = span::enter(Category::CacheAccess, 0);
                    let _b = span::enter(Category::DramQueue, 0);
                }
            })
        };

        // Serial: both runs on this thread.
        job(100);
        job(37);
        let serial = snapshot();
        let key = |r: &ProfileReport| -> Vec<(String, u64, u64)> {
            r.spans
                .iter()
                .map(|(p, t)| (p.clone(), t.count, t.timed))
                .collect()
        };
        let serial_key = key(&serial);

        // Parallel: one run per thread.
        reset();
        std::thread::scope(|s| {
            s.spawn(|| job(100));
            s.spawn(|| job(37));
        });
        let parallel = snapshot();

        assert_eq!(serial_key, key(&parallel));
        assert_eq!(serial.spans["run"].count, 2);
        assert_eq!(serial.spans["run;cache_access"].count, 137);
        assert_eq!(serial.spans["run;cache_access;dram_queue"].count, 137);
        // Per-run tree resets make sampled-timing counts deterministic too.
        let period = Category::CacheAccess.sample_period() as u64;
        let expect_timed = 100u64.div_ceil(period) + 37u64.div_ceil(period);
        assert_eq!(serial.spans["run;cache_access"].timed, expect_timed);

        set_enabled(false);
        reset();
    }

    #[cfg(feature = "on")]
    #[test]
    fn leaf_batches_attach_under_the_current_span() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        collect_run(|| {
            span::leaf(Category::Fetch, 0, 1_000, 16, 800);
            span::leaf(Category::Fetch, 0, 24, 0, 0);
        });
        let snap = snapshot();
        let fetch = snap.spans["run;fetch"];
        assert_eq!(fetch.count, 1_024);
        assert_eq!(fetch.timed, 16);
        assert_eq!(fetch.total_ns, 800);
        assert_eq!(fetch.estimated_ns(), 800 * 1_024 / 16);
        set_enabled(false);
        reset();
    }
}
