//! Sharded lock-free counters.
//!
//! Each statistic is an [`AtomicU64`] replicated across a small number of
//! cache-line-aligned shards. Writers pick a shard from their thread id and
//! increment with a relaxed fetch-add — no locks, no contention between
//! simulator threads. Readers sum across shards; sums are monotone but not a
//! point-in-time snapshot, which is fine for end-of-run reporting.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Every counted statistic, across the agent, both simulators and the
/// prefetch subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stat {
    // Per-level cache probes.
    L1DemandHit,
    L1DemandMiss,
    L1Fill,
    L2DemandHit,
    L2DemandMiss,
    L2Fill,
    LlcDemandHit,
    LlcDemandMiss,
    LlcFill,
    DramAccess,
    // Prefetch lifecycle.
    PrefetchRequested,
    PrefetchIssued,
    PrefetchDropped,
    PrefetchTimely,
    PrefetchLate,
    PrefetchWrong,
    // Bandit agent.
    ArmPulls,
    RewardsObserved,
    EpochResets,
    QSnapshots,
    AlgExplore,
    AlgExploit,
    ArmSwitches,
    // SMT pipeline.
    SmtFetchGrant,
    SmtFetchGated,
    SmtEpochs,
    // Parallel sweep engine. Only scheduling-invariant quantities are
    // counted (runs completed, panics observed), never worker counts, so
    // telemetry exports stay byte-identical at any `--jobs` setting.
    SweepRuns,
    SweepPanics,
    /// Total simulated cycles across all runs (memsim core cycles plus SMT
    /// pipeline cycles) — the denominator for per-cycle profiler costs.
    SimCycles,
}

impl Stat {
    /// Number of distinct statistics.
    pub const COUNT: usize = 29;

    /// All statistics, in declaration order.
    pub const ALL: [Stat; Stat::COUNT] = [
        Stat::L1DemandHit,
        Stat::L1DemandMiss,
        Stat::L1Fill,
        Stat::L2DemandHit,
        Stat::L2DemandMiss,
        Stat::L2Fill,
        Stat::LlcDemandHit,
        Stat::LlcDemandMiss,
        Stat::LlcFill,
        Stat::DramAccess,
        Stat::PrefetchRequested,
        Stat::PrefetchIssued,
        Stat::PrefetchDropped,
        Stat::PrefetchTimely,
        Stat::PrefetchLate,
        Stat::PrefetchWrong,
        Stat::ArmPulls,
        Stat::RewardsObserved,
        Stat::EpochResets,
        Stat::QSnapshots,
        Stat::AlgExplore,
        Stat::AlgExploit,
        Stat::ArmSwitches,
        Stat::SmtFetchGrant,
        Stat::SmtFetchGated,
        Stat::SmtEpochs,
        Stat::SweepRuns,
        Stat::SweepPanics,
        Stat::SimCycles,
    ];

    /// Stable snake_case name used by the exporters.
    pub const fn name(self) -> &'static str {
        match self {
            Stat::L1DemandHit => "l1_demand_hit",
            Stat::L1DemandMiss => "l1_demand_miss",
            Stat::L1Fill => "l1_fill",
            Stat::L2DemandHit => "l2_demand_hit",
            Stat::L2DemandMiss => "l2_demand_miss",
            Stat::L2Fill => "l2_fill",
            Stat::LlcDemandHit => "llc_demand_hit",
            Stat::LlcDemandMiss => "llc_demand_miss",
            Stat::LlcFill => "llc_fill",
            Stat::DramAccess => "dram_access",
            Stat::PrefetchRequested => "prefetch_requested",
            Stat::PrefetchIssued => "prefetch_issued",
            Stat::PrefetchDropped => "prefetch_dropped",
            Stat::PrefetchTimely => "prefetch_timely",
            Stat::PrefetchLate => "prefetch_late",
            Stat::PrefetchWrong => "prefetch_wrong",
            Stat::ArmPulls => "arm_pulls",
            Stat::RewardsObserved => "rewards_observed",
            Stat::EpochResets => "epoch_resets",
            Stat::QSnapshots => "q_snapshots",
            Stat::AlgExplore => "alg_explore",
            Stat::AlgExploit => "alg_exploit",
            Stat::ArmSwitches => "arm_switches",
            Stat::SmtFetchGrant => "smt_fetch_grant",
            Stat::SmtFetchGated => "smt_fetch_gated",
            Stat::SmtEpochs => "smt_epochs",
            Stat::SweepRuns => "sweep_runs",
            Stat::SweepPanics => "sweep_panics",
            Stat::SimCycles => "sim_cycles",
        }
    }
}

/// Number of write shards. A small power of two: enough to keep simulator
/// threads off each other's cache lines without bloating read-side sums.
pub const SHARDS: usize = 8;

/// One cache line of counters per shard slice to avoid false sharing.
#[repr(align(64))]
struct Shard {
    slots: [AtomicU64; Stat::COUNT],
}

impl Shard {
    fn new() -> Self {
        Shard {
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The sharded counter registry.
pub struct Counters {
    shards: [Shard; SHARDS],
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread claims a shard round-robin on first use. Const-initialized
    /// to a sentinel so the per-access TLS read skips lazy-init machinery;
    /// the round-robin claim happens on the first `add` of each thread.
    static MY_SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

#[inline]
fn my_shard() -> usize {
    MY_SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let claimed = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(claimed);
            claimed
        }
    })
}

impl Default for Counters {
    fn default() -> Self {
        Counters::new()
    }
}

impl Counters {
    /// An all-zero registry.
    pub fn new() -> Self {
        Counters {
            shards: std::array::from_fn(|_| Shard::new()),
        }
    }

    /// Adds `n` to `stat` on the calling thread's shard (relaxed, lock-free).
    #[inline]
    pub fn add(&self, stat: Stat, n: u64) {
        self.shards[my_shard()].slots[stat as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` to `stat` on an explicit shard (used by tests).
    #[inline]
    pub fn add_on_shard(&self, shard: usize, stat: Stat, n: u64) {
        self.shards[shard % SHARDS].slots[stat as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// The merged value of `stat` across all shards.
    pub fn sum(&self, stat: Stat) -> u64 {
        self.shards
            .iter()
            .map(|s| s.slots[stat as usize].load(Ordering::Relaxed))
            .sum()
    }

    /// Per-shard values of `stat`, in shard order.
    pub fn shard_values(&self, stat: Stat) -> [u64; SHARDS] {
        std::array::from_fn(|i| self.shards[i].slots[stat as usize].load(Ordering::Relaxed))
    }

    /// Merged values for every statistic, in [`Stat::ALL`] order.
    pub fn snapshot(&self) -> [u64; Stat::COUNT] {
        std::array::from_fn(|i| self.sum(Stat::ALL[i]))
    }

    /// Statistics with a non-zero merged value.
    pub fn nonzero(&self) -> Vec<(Stat, u64)> {
        Stat::ALL
            .iter()
            .map(|&s| (s, self.sum(s)))
            .filter(|&(_, v)| v != 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_all_matches_count_and_indices() {
        for (i, s) in Stat::ALL.iter().enumerate() {
            assert_eq!(*s as usize, i, "{}", s.name());
        }
    }

    #[test]
    fn add_and_sum_round_trip() {
        let c = Counters::new();
        c.add(Stat::L2DemandHit, 3);
        c.add(Stat::L2DemandHit, 4);
        c.add(Stat::ArmPulls, 1);
        assert_eq!(c.sum(Stat::L2DemandHit), 7);
        assert_eq!(c.sum(Stat::ArmPulls), 1);
        assert_eq!(c.sum(Stat::DramAccess), 0);
    }

    #[test]
    fn shards_merge_into_sum() {
        let c = Counters::new();
        for shard in 0..SHARDS {
            c.add_on_shard(shard, Stat::PrefetchIssued, shard as u64 + 1);
        }
        let per_shard: u64 = c.shard_values(Stat::PrefetchIssued).iter().sum();
        assert_eq!(c.sum(Stat::PrefetchIssued), per_shard);
        assert_eq!(per_shard, (1..=SHARDS as u64).sum::<u64>());
    }

    #[test]
    fn concurrent_adds_are_lossless() {
        let c = std::sync::Arc::new(Counters::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.add(Stat::SmtFetchGrant, 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.sum(Stat::SmtFetchGrant), 80_000);
    }
}
