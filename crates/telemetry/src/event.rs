//! Structured telemetry events.
//!
//! Two families share the ring buffer:
//!
//! - **Bandit events** trace every agent decision (`ArmPulled`,
//!   `RewardObserved`, `EpochReset`, `QSnapshot`). These are low-frequency
//!   (one per bandit step) and always logged when a recorder is installed.
//! - **Simulator probe events** trace individual cache/prefetch/SMT actions.
//!   They are emitted only when [`crate::RecorderConfig::sim_events`] is set,
//!   because per-access logging would dominate simulator runtime.

/// Cache hierarchy level, labeling per-level probe events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLevel {
    /// Per-core L1 data cache.
    L1,
    /// Per-core L2 cache (the bandit's home).
    L2,
    /// Shared last-level cache.
    Llc,
}

impl CacheLevel {
    /// Stable lowercase name used by the exporters.
    pub const fn name(self) -> &'static str {
        match self {
            CacheLevel::L1 => "l1",
            CacheLevel::L2 => "l2",
            CacheLevel::Llc => "llc",
        }
    }
}

/// A single structured telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The agent selected an arm (one per bandit step).
    ArmPulled {
        /// Agent identity (its RNG seed — unique per agent in practice).
        agent: u64,
        /// Completed agent steps at emission time.
        step: u64,
        /// Selected arm index.
        arm: usize,
        /// Agent phase: `round_robin`, `main` or `restart_sweep`.
        phase: &'static str,
    },
    /// The agent received a reward for the previously pulled arm.
    RewardObserved {
        /// Agent identity.
        agent: u64,
        /// Completed agent steps at emission time.
        step: u64,
        /// Arm the reward applies to.
        arm: usize,
        /// Raw reward (e.g. step IPC).
        reward: f64,
        /// Reward after normalization by the agent's running normalizer.
        normalized: f64,
    },
    /// The agent triggered a §4.3 round-robin restart sweep.
    EpochReset {
        /// Agent identity.
        agent: u64,
        /// Completed agent steps at emission time.
        step: u64,
    },
    /// Periodic snapshot of the agent's learned state.
    QSnapshot {
        /// Agent identity.
        agent: u64,
        /// Completed agent steps at emission time.
        step: u64,
        /// Arm with the highest empirical reward.
        best_arm: usize,
        /// That arm's empirical mean reward.
        best_q: f64,
        /// Total (possibly discounted) pull mass across arms.
        n_total: f64,
    },
    /// A demand access probed a cache level (sim probe).
    CacheAccess {
        /// Cache level probed.
        level: CacheLevel,
        /// Core issuing the access.
        core: usize,
        /// Line address.
        line: u64,
        /// Whether the probe hit.
        hit: bool,
        /// Cycle of the access.
        cycle: u64,
    },
    /// A line was filled into a cache level (sim probe).
    CacheFill {
        /// Cache level filled.
        level: CacheLevel,
        /// Core owning the cache (0 for shared levels).
        core: usize,
        /// Line address.
        line: u64,
        /// Whether the fill came from a prefetch.
        prefetch: bool,
    },
    /// A prefetch left the queue toward memory (sim probe).
    PrefetchIssued {
        /// Core issuing the prefetch.
        core: usize,
        /// Target line address.
        line: u64,
        /// Cycle of issue.
        cycle: u64,
    },
    /// An SMT fetch slot was granted to a thread this cycle (sim probe).
    FetchSlotGrant {
        /// Winning thread index.
        thread: usize,
        /// Cycle of the grant.
        cycle: u64,
    },
    /// A thread was gated off fetch by the PG policy this cycle (sim probe).
    FetchGated {
        /// Gated thread index.
        thread: usize,
        /// Cycle of the decision.
        cycle: u64,
    },
    /// A sampled occupancy/utilization reading from a simulator resource
    /// (DRAM backlog, MSHR fill, per-thread fetch share). Sampled at bandit
    /// epoch granularity — far below probe frequency — so it is *not* gated
    /// on [`crate::RecorderConfig::sim_events`]; these become counter tracks
    /// in the Perfetto export.
    Occupancy {
        /// Resource track name (e.g. `dram_backlog`, `fetch_share`).
        track: &'static str,
        /// Resource instance (core or thread index; 0 for shared resources).
        id: usize,
        /// The sampled value, in track-specific units.
        value: f64,
        /// Cycle of the sample.
        cycle: u64,
    },
}

impl Event {
    /// Stable snake_case discriminant name used by the exporters.
    pub const fn kind(&self) -> &'static str {
        match self {
            Event::ArmPulled { .. } => "arm_pulled",
            Event::RewardObserved { .. } => "reward_observed",
            Event::EpochReset { .. } => "epoch_reset",
            Event::QSnapshot { .. } => "q_snapshot",
            Event::CacheAccess { .. } => "cache_access",
            Event::CacheFill { .. } => "cache_fill",
            Event::PrefetchIssued { .. } => "prefetch_issued",
            Event::FetchSlotGrant { .. } => "fetch_slot_grant",
            Event::FetchGated { .. } => "fetch_gated",
            Event::Occupancy { .. } => "occupancy",
        }
    }

    /// True for the high-frequency simulator probe family.
    pub const fn is_sim_probe(&self) -> bool {
        matches!(
            self,
            Event::CacheAccess { .. }
                | Event::CacheFill { .. }
                | Event::PrefetchIssued { .. }
                | Event::FetchSlotGrant { .. }
                | Event::FetchGated { .. }
        )
    }
}
