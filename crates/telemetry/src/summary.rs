//! Periodic-summary sink: structured progress lines and end-of-run counter
//! summaries on stderr.
//!
//! This module is deliberately *not* gated by the `on` feature: experiment
//! binaries route their human-facing progress through it unconditionally
//! (replacing ad-hoc `eprintln!`), while the counter summaries only have
//! content when a recorder is installed.

use crate::counters::Stat;
use crate::hist::Hist;
use crate::Recorder;
use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Prefix for every line the sink writes, so telemetry output is filterable
/// from the final result tables on stdout.
pub const PREFIX: &str = "[mab]";

/// Process-wide quiet switch (`--quiet` / `MAB_QUIET=1`): suppresses every
/// `[mab]` progress line and the live sweep progress display.
static QUIET: AtomicBool = AtomicBool::new(false);

/// Turns `[mab]` stderr progress lines on or off for the whole process.
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::SeqCst);
}

/// True when `[mab]` progress output is suppressed.
pub fn quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

#[doc(hidden)]
pub fn progress_line(msg: &str) {
    if !quiet() {
        eprintln!("{PREFIX} {msg}");
    }
}

/// Live progress/ETA display for sweeps: `[mab] sweep 12/64 runs, 3.2
/// runs/s, ETA 16s`, redrawn in place on stderr. The line renders only when
/// stderr is a TTY and quiet mode is off — on CI logs and redirected
/// streams it is fully inert — but every tick also publishes the
/// [`crate::live`] sweep-progress cell, so the monitoring plane sees
/// progress regardless of the terminal. The line and the cell's `/metrics`
/// consumers derive rate and ETA from the same [`crate::live`] helpers.
pub struct SweepProgress {
    total: usize,
    done: AtomicUsize,
    last_render_ms: AtomicU64,
    start: Instant,
    active: bool,
}

impl SweepProgress {
    /// A progress display for `total` runs.
    pub fn new(total: usize) -> Self {
        crate::live::sweep_started(total as u64);
        SweepProgress {
            total,
            done: AtomicUsize::new(0),
            last_render_ms: AtomicU64::new(u64::MAX),
            start: Instant::now(),
            active: total > 1 && !quiet() && std::io::stderr().is_terminal(),
        }
    }

    /// Whether this display will ever draw anything.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Records one completed run, publishes the live cell, and redraws
    /// (throttled to ~10 Hz).
    pub fn tick(&self) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        crate::live::sweep_progressed(done as u64);
        if !self.active {
            return;
        }
        let elapsed_ms = self.start.elapsed().as_millis() as u64;
        let last = self.last_render_ms.load(Ordering::Relaxed);
        if last != u64::MAX && done != self.total && elapsed_ms.saturating_sub(last) < 100 {
            return;
        }
        self.last_render_ms.store(elapsed_ms, Ordering::Relaxed);
        let secs = elapsed_ms as f64 / 1e3;
        let rate = crate::live::rate_per_sec(done as u64, secs);
        let eta = crate::live::eta_seconds(done as u64, self.total as u64, secs);
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r{PREFIX} sweep {done}/{} runs, {} runs/s, ETA {} ",
            self.total,
            crate::live::format_rate(rate),
            crate::live::format_eta(eta),
        );
        let _ = err.flush();
    }

    /// Clears the progress line and marks the live cell finished (call once
    /// after the sweep completes).
    pub fn finish(&self) {
        crate::live::sweep_finished();
        if !self.active {
            return;
        }
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r{:width$}\r", "", width = 64);
        let _ = err.flush();
    }
}

/// Emits one progress line on stderr, prefixed with [`PREFIX`].
#[macro_export]
macro_rules! progress {
    ($($fmt:tt)*) => {
        $crate::summary::progress_line(&format!($($fmt)*))
    };
}

/// Point-in-time capture of the recorder's counters and histograms.
///
/// The recorder is process-global and cumulative, so a session that wants
/// *its own* totals (e.g. for a run-ledger record) must capture a snapshot
/// at start and subtract it at finish; see [`key_stats_since`].
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    counters: [u64; Stat::COUNT],
    /// Per-histogram `(count, sum)` in stored units; the sum is
    /// reconstructed as `mean × count`, which is exact because the stored
    /// sum is an integer total of `u64` samples.
    hists: [(u64, f64); Hist::COUNT],
}

/// Captures the recorder's current counter and histogram totals.
#[must_use]
pub fn snapshot(rec: &Recorder) -> StatsSnapshot {
    let mut hists = [(0u64, 0.0f64); Hist::COUNT];
    for (slot, &h) in hists.iter_mut().zip(Hist::ALL.iter()) {
        let hist = rec.hist(h);
        let n = hist.count();
        *slot = (n, hist.mean() * n as f64);
    }
    StatsSnapshot {
        counters: rec.counters().snapshot(),
        hists,
    }
}

/// Key output stats accumulated since `base` was captured, as stable
/// `(name, value)` pairs: every counter that moved (by its snake_case
/// name), plus `<hist>_n` / `<hist>_mean` for every histogram that gained
/// samples (means in display units). Pairs come out in declaration order,
/// so the list is deterministic.
#[must_use]
pub fn key_stats_since(rec: &Recorder, base: &StatsSnapshot) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let now = rec.counters().snapshot();
    for (i, &stat) in Stat::ALL.iter().enumerate() {
        let delta = now[i].saturating_sub(base.counters[i]);
        if delta != 0 {
            out.push((stat.name().to_string(), delta as f64));
        }
    }
    for (i, &h) in Hist::ALL.iter().enumerate() {
        let hist = rec.hist(h);
        let n = hist.count();
        let (base_n, base_sum) = base.hists[i];
        let dn = n.saturating_sub(base_n);
        if dn != 0 {
            let dsum = hist.mean() * n as f64 - base_sum;
            out.push((format!("{}_n", h.name()), dn as f64));
            out.push((
                format!("{}_mean", h.name()),
                rec.hist_display(h, dsum / dn as f64),
            ));
        }
    }
    out
}

/// Emits periodic and final counter/histogram summaries.
pub struct SummarySink {
    /// Emit a periodic summary every `every` ticks (0 disables periodic
    /// output; the final summary is always available).
    every: u64,
    ticks: AtomicU64,
}

impl SummarySink {
    /// A sink summarizing every `every` calls to [`SummarySink::tick`].
    pub fn new(every: u64) -> Self {
        SummarySink {
            every,
            ticks: AtomicU64::new(0),
        }
    }

    /// Signals one unit of progress; emits a summary at the configured
    /// cadence. Returns true when a summary was written.
    pub fn tick(&self, rec: &Recorder) -> bool {
        let n = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        if self.every != 0 && n.is_multiple_of(self.every) {
            self.write_summary(rec, &mut std::io::stderr().lock()).ok();
            true
        } else {
            false
        }
    }

    /// Writes the end-of-run summary to stderr.
    pub fn finish(&self, rec: &Recorder) {
        self.write_summary(rec, &mut std::io::stderr().lock()).ok();
    }

    /// Writes non-zero counters and non-empty histograms to `w`.
    pub fn write_summary<W: Write>(&self, rec: &Recorder, w: &mut W) -> std::io::Result<()> {
        let nonzero = rec.counters().nonzero();
        if nonzero.is_empty() && Hist::ALL.iter().all(|&h| rec.hist(h).count() == 0) {
            writeln!(w, "{PREFIX} telemetry: no samples recorded")?;
            return Ok(());
        }
        writeln!(w, "{PREFIX} telemetry summary:")?;
        for (stat, value) in nonzero {
            writeln!(w, "{PREFIX}   {:<22} {value}", stat.name())?;
        }
        for h in Hist::ALL {
            let hist = rec.hist(h);
            if hist.count() != 0 {
                writeln!(
                    w,
                    "{PREFIX}   {:<22} n={} mean={:.4} p50={:.4} p99={:.4}",
                    h.name(),
                    hist.count(),
                    rec.hist_display(h, hist.mean()),
                    rec.hist_display(h, hist.percentile(0.5) as f64),
                    rec.hist_display(h, hist.percentile(0.99) as f64),
                )?;
            }
        }
        let ring = rec.ring();
        writeln!(
            w,
            "{PREFIX}   events: {} retained, {} dropped, {} total",
            ring.len(),
            ring.dropped(),
            ring.total_pushed()
        )?;
        let trace = rec.trace();
        if trace.total_pushed() != 0 {
            writeln!(
                w,
                "{PREFIX}   decisions: {} retained, {} dropped, {} total, {} unattributed",
                trace.len(),
                trace.dropped(),
                trace.total_pushed(),
                trace.unattributed()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Stat;
    use crate::{Recorder, RecorderConfig};

    #[test]
    fn summary_lists_nonzero_counters_only() {
        let rec = Recorder::new(RecorderConfig::default());
        rec.counters().add(Stat::ArmPulls, 5);
        rec.hist(Hist::Reward).record_f64(1.0);
        let sink = SummarySink::new(0);
        let mut out = Vec::new();
        sink.write_summary(&rec, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("arm_pulls"), "{text}");
        assert!(text.contains("reward"), "{text}");
        assert!(!text.contains("dram_access"), "{text}");
    }

    #[test]
    fn tick_summarizes_at_cadence() {
        let rec = Recorder::new(RecorderConfig::default());
        let sink = SummarySink::new(3);
        assert!(!sink.tick(&rec));
        assert!(!sink.tick(&rec));
        assert!(sink.tick(&rec));
    }

    #[test]
    fn sweep_progress_respects_quiet() {
        set_quiet(true);
        assert!(quiet());
        let p = SweepProgress::new(10);
        assert!(!p.active());
        // Ticks and finish on an inactive display must not write anything.
        p.tick();
        p.finish();
        set_quiet(false);
    }

    #[test]
    fn single_run_sweep_never_draws() {
        let p = SweepProgress::new(1);
        assert!(!p.active());
    }

    #[test]
    fn key_stats_are_deltas_not_totals() {
        let rec = Recorder::new(RecorderConfig::default());
        rec.counters().add(Stat::ArmPulls, 7);
        rec.hist(Hist::Reward).record_f64(2.0);
        let base = snapshot(&rec);

        rec.counters().add(Stat::ArmPulls, 3);
        rec.counters().add(Stat::DramAccess, 2);
        rec.hist(Hist::Reward).record_f64(4.0);
        rec.hist(Hist::Reward).record_f64(6.0);

        let stats = key_stats_since(&rec, &base);
        let get = |name: &str| {
            stats
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing {name} in {stats:?}"))
        };
        // Pre-snapshot activity is subtracted out.
        assert_eq!(get("arm_pulls"), 3.0);
        assert_eq!(get("dram_access"), 2.0);
        assert_eq!(get("reward_n"), 2.0);
        // Delta mean over the two new samples (4.0, 6.0), not the lifetime
        // mean over all three.
        assert!((get("reward_mean") - 5.0).abs() < 1e-6, "{stats:?}");
        // Untouched counters never appear.
        assert!(!stats.iter().any(|(k, _)| k == "l1_demand_hit"));
    }

    #[test]
    fn key_stats_since_fresh_snapshot_of_idle_recorder_is_empty() {
        let rec = Recorder::new(RecorderConfig::default());
        rec.counters().add(Stat::ArmPulls, 7);
        let base = snapshot(&rec);
        assert!(key_stats_since(&rec, &base).is_empty());
    }

    #[test]
    fn empty_recorder_reports_no_samples() {
        let rec = Recorder::new(RecorderConfig::default());
        let sink = SummarySink::new(0);
        let mut out = Vec::new();
        sink.write_summary(&rec, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("no samples"), "{text}");
    }
}
