//! Decision-provenance tracing.
//!
//! Aggregate counters answer "how often", but the paper's behavioural claims
//! — convergence to the best arm per program phase (Fig. 7), re-exploration
//! under drift — need "*why* did the agent pick arm 3 at epoch 41k?". Each
//! bandit decision is captured as a [`DecisionRecord`]: the full per-arm
//! state the algorithm saw (Q-values, selection bounds, pull counts), the
//! chosen arm, whether the pick was exploratory, and — once the bandit step
//! finishes — the delayed reward attributed back to the decision.
//!
//! Records live in a [`TraceRing`] with the same bounded-buffer discipline
//! as the event ring: fixed capacity, overwrite-oldest, sequence numbers and
//! drop accounting, a short mutex critical section (decisions are per
//! bandit step, orders of magnitude rarer than counter bumps).

use std::collections::VecDeque;
use std::sync::Mutex;

/// Per-arm agent state captured at decision time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArmProbe {
    /// Empirical mean (normalized) reward `r_i` — the rTable entry.
    pub q: f64,
    /// The algorithm's selection potential for this arm: the UCB/DUCB upper
    /// confidence bound, SW-UCB's windowed bound, Thompson's one-sigma
    /// posterior quantile, or plain `q` for greedy selection.
    pub bound: f64,
    /// (Possibly discounted) selection count `n_i` — the nTable entry.
    pub pulls: f64,
}

/// One bandit decision with full provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Agent identity (its RNG seed — unique per agent in practice).
    pub agent: u64,
    /// Bandit step index at selection time (0-based; monotone per agent).
    pub epoch: u64,
    /// Simulated-cycle timestamp from the recorder clock (0 before any
    /// simulator published a cycle).
    pub cycle: u64,
    /// The selected arm index.
    pub chosen: usize,
    /// True when the pick was exploratory: the agent was in a round-robin
    /// sweep, or the algorithm chose an arm other than the current greedy
    /// (highest-`q`) one.
    pub explore: bool,
    /// Agent phase: `round_robin`, `main` or `restart_sweep`.
    pub phase: &'static str,
    /// Per-arm state at selection time, indexed by arm.
    pub arms: Vec<ArmProbe>,
    /// The raw step reward, attributed after the step completes
    /// (`NaN` until then — exported as `null`).
    pub reward: f64,
    /// The reward after normalization by the agent's running normalizer
    /// (`NaN` until attributed).
    pub normalized: f64,
}

/// A sequence-numbered decision as stored in the ring.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqDecision {
    /// Global sequence number (0-based, never reused).
    pub seq: u64,
    /// The decision payload.
    pub record: DecisionRecord,
}

struct TraceInner {
    buf: VecDeque<SeqDecision>,
    next_seq: u64,
    dropped: u64,
    /// Rewards whose decision was already evicted when attribution arrived.
    unattributed: u64,
}

/// Fixed-capacity, overwrite-oldest decision log with delayed-reward
/// attribution.
pub struct TraceRing {
    capacity: usize,
    inner: Mutex<TraceInner>,
}

impl TraceRing {
    /// A ring holding at most `capacity` decisions (minimum 1).
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            capacity: capacity.max(1),
            inner: Mutex::new(TraceInner {
                buf: VecDeque::with_capacity(capacity.clamp(1, 4096)),
                next_seq: 0,
                dropped: 0,
                unattributed: 0,
            }),
        }
    }

    /// Maximum number of retained decisions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a decision, evicting the oldest if the ring is full.
    pub fn push(&self, record: DecisionRecord) {
        let mut inner = self.inner.lock().unwrap();
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.buf.push_back(SeqDecision { seq, record });
    }

    /// Attributes the delayed reward of step `epoch` of `agent` back to its
    /// decision record. Scans newest-first: the target is almost always the
    /// most recent record of that agent. Counts the attribution as lost when
    /// the decision has already been evicted.
    pub fn attribute(&self, agent: u64, epoch: u64, reward: f64, normalized: f64) {
        let mut inner = self.inner.lock().unwrap();
        for d in inner.buf.iter_mut().rev() {
            if d.record.agent == agent && d.record.epoch == epoch {
                d.record.reward = reward;
                d.record.normalized = normalized;
                return;
            }
        }
        inner.unattributed += 1;
    }

    /// Number of decisions currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().buf.len()
    }

    /// True when no decisions are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of decisions lost to wraparound.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Total decisions ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }

    /// Rewards that arrived after their decision was evicted.
    pub fn unattributed(&self) -> u64 {
        self.inner.lock().unwrap().unattributed
    }

    /// The retained decisions, oldest first.
    pub fn decisions(&self) -> Vec<SeqDecision> {
        self.inner.lock().unwrap().buf.iter().cloned().collect()
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_f64_array(values: impl Iterator<Item = f64>) -> String {
    let mut out = String::from("[");
    for (i, v) in values.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_f64(v));
    }
    out.push(']');
    out
}

/// One decision as a JSON object on a single line
/// (`kind == "decision"`; per-arm state as parallel arrays indexed by arm).
pub fn decision_to_json(d: &SeqDecision) -> String {
    let r = &d.record;
    format!(
        "{{\"kind\":\"decision\",\"seq\":{},\"agent\":{},\"epoch\":{},\"cycle\":{},\
         \"arm\":{},\"explore\":{},\"phase\":\"{}\",\"reward\":{},\"normalized\":{},\
         \"q\":{},\"bound\":{},\"pulls\":{}}}",
        d.seq,
        r.agent,
        r.epoch,
        r.cycle,
        r.chosen,
        r.explore,
        crate::export::escape_json(r.phase),
        json_f64(r.reward),
        json_f64(r.normalized),
        json_f64_array(r.arms.iter().map(|a| a.q)),
        json_f64_array(r.arms.iter().map(|a| a.bound)),
        json_f64_array(r.arms.iter().map(|a| a.pulls)),
    )
}

/// Writes the trace ring as JSON lines: a `trace_meta` accounting line
/// followed by one `decision` line per retained record.
pub fn write_trace_jsonl<W: std::io::Write>(ring: &TraceRing, w: &mut W) -> std::io::Result<()> {
    writeln!(
        w,
        "{{\"kind\":\"trace_meta\",\"decisions_retained\":{},\"decisions_dropped\":{},\
         \"decisions_total\":{},\"rewards_unattributed\":{}}}",
        ring.len(),
        ring.dropped(),
        ring.total_pushed(),
        ring.unattributed()
    )?;
    for d in ring.decisions() {
        writeln!(w, "{}", decision_to_json(&d))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(agent: u64, epoch: u64) -> DecisionRecord {
        DecisionRecord {
            agent,
            epoch,
            cycle: epoch * 100,
            chosen: (epoch % 3) as usize,
            explore: epoch.is_multiple_of(2),
            phase: "main",
            arms: vec![
                ArmProbe {
                    q: 0.5,
                    bound: 0.7,
                    pulls: 2.0,
                },
                ArmProbe {
                    q: 0.9,
                    bound: 1.0,
                    pulls: 5.0,
                },
            ],
            reward: f64::NAN,
            normalized: f64::NAN,
        }
    }

    #[test]
    fn retains_in_order_with_sequence_numbers() {
        let ring = TraceRing::new(8);
        for e in 0..5 {
            ring.push(record(1, e));
        }
        let got = ring.decisions();
        assert_eq!(got.len(), 5);
        for (i, d) in got.iter().enumerate() {
            assert_eq!(d.seq, i as u64);
            assert_eq!(d.record.epoch, i as u64);
        }
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn wraparound_counts_dropped_decisions() {
        let ring = TraceRing::new(3);
        for e in 0..10 {
            ring.push(record(1, e));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 7);
        assert_eq!(ring.total_pushed(), 10);
        let epochs: Vec<u64> = ring.decisions().iter().map(|d| d.record.epoch).collect();
        assert_eq!(epochs, vec![7, 8, 9]);
    }

    #[test]
    fn rewards_attribute_to_the_matching_decision() {
        let ring = TraceRing::new(8);
        ring.push(record(1, 0));
        ring.push(record(2, 0));
        ring.attribute(1, 0, 1.25, 0.625);
        let got = ring.decisions();
        assert_eq!(got[0].record.reward, 1.25);
        assert_eq!(got[0].record.normalized, 0.625);
        assert!(got[1].record.reward.is_nan());
        assert_eq!(ring.unattributed(), 0);
    }

    #[test]
    fn attribution_after_eviction_is_accounted() {
        let ring = TraceRing::new(1);
        ring.push(record(1, 0));
        ring.push(record(1, 1)); // evicts epoch 0
        ring.attribute(1, 0, 1.0, 1.0);
        assert_eq!(ring.unattributed(), 1);
    }

    #[test]
    fn decision_json_shape_is_stable() {
        let mut r = record(7, 3);
        r.reward = 1.5;
        r.normalized = 0.75;
        let line = decision_to_json(&SeqDecision { seq: 4, record: r });
        assert_eq!(
            line,
            "{\"kind\":\"decision\",\"seq\":4,\"agent\":7,\"epoch\":3,\"cycle\":300,\
             \"arm\":0,\"explore\":false,\"phase\":\"main\",\"reward\":1.5,\"normalized\":0.75,\
             \"q\":[0.5,0.9],\"bound\":[0.7,1],\"pulls\":[2,5]}"
        );
    }

    #[test]
    fn unattributed_reward_exports_as_null() {
        let line = decision_to_json(&SeqDecision {
            seq: 0,
            record: record(1, 0),
        });
        assert!(line.contains("\"reward\":null"), "{line}");
        assert!(line.contains("\"normalized\":null"), "{line}");
    }

    #[test]
    fn trace_jsonl_starts_with_meta() {
        let ring = TraceRing::new(4);
        ring.push(record(1, 0));
        let mut out = Vec::new();
        write_trace_jsonl(&ring, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let mut lines = text.lines();
        assert!(lines.next().unwrap().contains("\"kind\":\"trace_meta\""));
        assert!(lines.next().unwrap().contains("\"kind\":\"decision\""));
    }
}
