//! Property tests for the counter and histogram registries.
//!
//! The sharded counters and log2 histograms are the pieces of the telemetry
//! layer whose invariants hold over *every* input sequence, so they are
//! checked with randomized inputs rather than hand-picked cases.

use mab_telemetry::counters::SHARDS;
use mab_telemetry::hist::BUCKETS;
use mab_telemetry::{Counters, Histogram, Stat};
use proptest::prelude::*;

proptest! {
    /// The merged view of a counter equals the sum over its per-shard
    /// values, no matter how adds are spread across shards and stats.
    #[test]
    fn merged_counters_equal_per_shard_sums(
        ops in prop::collection::vec(
            (0usize..SHARDS * 2, 0usize..Stat::COUNT, 0u64..1_000),
            0..200,
        ),
    ) {
        let c = Counters::new();
        let mut expected = [0u64; Stat::COUNT];
        for &(shard, stat, n) in &ops {
            c.add_on_shard(shard, Stat::ALL[stat], n);
            expected[stat] += n;
        }
        for stat in Stat::ALL {
            let per_shard: u64 = c.shard_values(stat).iter().sum();
            prop_assert_eq!(c.sum(stat), per_shard);
            prop_assert_eq!(c.sum(stat), expected[stat as usize]);
        }
        let snapshot = c.snapshot();
        prop_assert_eq!(snapshot, expected);
        for (stat, value) in c.nonzero() {
            prop_assert_eq!(value, expected[stat as usize]);
            prop_assert_ne!(value, 0);
        }
    }

    /// Percentile queries are monotone in the requested quantile, bracket
    /// the recorded values, and the count matches the number of records.
    #[test]
    fn histogram_percentiles_are_monotone(
        values in prop::collection::vec(0u64..1_000_000_000_000, 1..200),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);

        let grid = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let mut prev = 0u64;
        for &p in &grid {
            let q = h.percentile(p);
            prop_assert!(q >= prev, "percentile({}) = {} < {}", p, q, prev);
            prev = q;
        }
        // The top percentile's bucket upper bound covers the maximum value,
        // and no percentile exceeds that bucket's bound.
        let max = *values.iter().max().unwrap();
        prop_assert!(h.percentile(1.0) >= max);
    }

    /// Merging one histogram into another adds counts, sums and buckets.
    #[test]
    fn histogram_merge_adds_counts(
        a in prop::collection::vec(0u64..1_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let (ha, hb, hall) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(ha.bucket_counts(), hall.bucket_counts());
        let grid = [0.25, 0.5, 0.9, 0.99];
        for &p in &grid {
            prop_assert_eq!(ha.percentile(p), hall.percentile(p));
        }
        prop_assert_eq!(ha.bucket_counts().len(), BUCKETS);
    }
}
