//! The on-disk ledger: append-only CRC-framed JSONL segments plus a
//! digest index.
//!
//! # Layout
//!
//! ```text
//! results/ledger/
//!   ledger.jsonl   the write segment: one "<crc32 hex8> <record json>\n"
//!                  line per RunRecord, append-only
//!   *.jsonl        further read-only segments (e.g. copied from another
//!                  machine) — scanned by every read, never written
//!   ledger.idx     digest → byte-offset index over ledger.jsonl with a
//!                  trailing "=<segment length>" freshness marker; a pure
//!                  cache, rebuilt from the segment whenever stale
//! ```
//!
//! # Concurrency & corruption
//!
//! Appends serialize through an in-process mutex and hit the file as one
//! `O_APPEND` write of a fully framed line, so concurrent writers (sweep
//! arms in one process, or several experiment processes sharing a ledger)
//! interleave only at line granularity. If a write *is* torn — power loss,
//! a filled disk, two processes racing on an exotic filesystem — the CRC
//! frame catches it: readers verify every line's checksum and **skip** bad
//! lines with a warning, never a panic, so one damaged entry cannot take
//! down the history. The index carries a freshness marker (the segment
//! length it covers) and falls back to a full scan plus rewrite whenever
//! the marker disagrees with the file.

use crate::record::RunRecord;
use mab_traces::format::crc32;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// File name of the write segment.
pub const SEGMENT: &str = "ledger.jsonl";
/// File name of the digest index.
pub const INDEX: &str = "ledger.idx";

/// Outcome of [`Ledger::record`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Append {
    /// The record was appended; carries its digest.
    Recorded(String),
    /// An identical-outcome record with the same digest already exists;
    /// nothing was written.
    Deduplicated(String),
}

impl Append {
    /// The digest of the (possibly pre-existing) record.
    pub fn digest(&self) -> &str {
        match self {
            Append::Recorded(d) | Append::Deduplicated(d) => d,
        }
    }
}

/// Result of reading a ledger: the surviving records plus one warning per
/// skipped (truncated / corrupt / unparseable) line.
#[derive(Debug, Default)]
pub struct ReadOutcome {
    /// All readable records, in segment order (write segment first by
    /// name-sorted file order, records in append order within a segment).
    pub records: Vec<RunRecord>,
    /// One human-readable warning per skipped line.
    pub warnings: Vec<String>,
}

/// Handle to a ledger directory.
#[derive(Debug)]
pub struct Ledger {
    dir: PathBuf,
    write_lock: Mutex<()>,
}

impl Ledger {
    /// Opens (creating if needed) the ledger under `dir`.
    ///
    /// # Errors
    ///
    /// Fails only when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Ledger> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Ledger {
            dir,
            write_lock: Mutex::new(()),
        })
    }

    /// The ledger directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records `record`, unless an entry with the same digest and the same
    /// outcome already exists — then the append is a no-op
    /// ([`Append::Deduplicated`]), which is what makes re-recording a
    /// deterministic run idempotent and result-memoization sound.
    ///
    /// A digest collision with a *different* outcome (code change the
    /// version string missed, or genuine nondeterminism) is appended anyway:
    /// an append-only history must surface disagreement, not hide it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the segment or index files.
    pub fn record(&self, record: &RunRecord) -> std::io::Result<Append> {
        let digest = record.digest();
        let _guard = self.write_lock.lock().unwrap();
        if self
            .find(&digest)?
            .iter()
            .any(|existing| existing.same_outcome(record))
        {
            return Ok(Append::Deduplicated(digest));
        }
        let segment = self.dir.join(SEGMENT);
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&segment)?;
        let offset = file.seek(SeekFrom::End(0))?;
        let line = frame(&record.to_json());
        // One write_all of the fully framed line: concurrent O_APPEND
        // writers interleave at line granularity, and anything torn is
        // caught by the CRC on read.
        file.write_all(line.as_bytes())?;
        let new_len = offset + line.len() as u64;
        self.extend_index(&digest, offset, new_len)?;
        Ok(Append::Recorded(digest))
    }

    /// All records with the given digest (usually zero or one; several when
    /// reruns disagreed). Served from the index in O(1) when it is fresh;
    /// falls back to a scan (rebuilding the index) otherwise. Extra
    /// read-only segments are always scanned.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; corrupt lines are skipped, not errors.
    pub fn find(&self, digest: &str) -> std::io::Result<Vec<RunRecord>> {
        let mut found = Vec::new();
        let segment = self.dir.join(SEGMENT);
        if segment.is_file() {
            match self.fresh_index()? {
                Some(entries) => {
                    let mut file = File::open(&segment)?;
                    for (d, offset) in &entries {
                        if d == digest {
                            if let Some(rec) = read_record_at(&mut file, *offset) {
                                found.push(rec);
                            }
                        }
                    }
                }
                None => {
                    let (entries, _) = scan_segment(&segment)?;
                    self.write_index(&entries, std::fs::metadata(&segment)?.len())?;
                    for (rec, _) in entries {
                        if rec.digest() == digest {
                            found.push(rec);
                        }
                    }
                }
            }
        }
        for path in self.extra_segments()? {
            let (entries, _) = scan_segment(&path)?;
            for (rec, _) in entries {
                if rec.digest() == digest {
                    found.push(rec);
                }
            }
        }
        Ok(found)
    }

    /// Reads every record in every segment, collecting warnings for skipped
    /// lines instead of failing.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors opening or reading segment files; damaged
    /// *contents* only produce warnings.
    pub fn read_all(&self) -> std::io::Result<ReadOutcome> {
        let mut out = ReadOutcome::default();
        let mut paths = Vec::new();
        let segment = self.dir.join(SEGMENT);
        if segment.is_file() {
            paths.push(segment);
        }
        paths.extend(self.extra_segments()?);
        for path in paths {
            let (entries, warnings) = scan_segment(&path)?;
            out.records.extend(entries.into_iter().map(|(rec, _)| rec));
            out.warnings.extend(warnings);
        }
        Ok(out)
    }

    /// Read-only segments: every `*.jsonl` except the write segment, sorted
    /// by file name for deterministic read order.
    fn extra_segments(&self) -> std::io::Result<Vec<PathBuf>> {
        let mut extras = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.ends_with(".jsonl") && name != SEGMENT && path.is_file() {
                extras.push(path);
            }
        }
        extras.sort();
        Ok(extras)
    }

    /// Loads the index if its freshness marker matches the current segment
    /// length; `None` means "stale or absent — rescan".
    fn fresh_index(&self) -> std::io::Result<Option<Vec<(String, u64)>>> {
        let path = self.dir.join(INDEX);
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Ok(None);
        };
        let mut entries = Vec::new();
        let mut covered: Option<u64> = None;
        for line in text.lines() {
            if let Some(len) = line.strip_prefix('=') {
                covered = len.parse().ok();
            } else if let Some((digest, offset)) = line.split_once(' ') {
                match offset.parse() {
                    Ok(offset) => entries.push((digest.to_string(), offset)),
                    Err(_) => return Ok(None),
                }
            } else if !line.is_empty() {
                return Ok(None);
            }
        }
        let segment_len = std::fs::metadata(self.dir.join(SEGMENT))?.len();
        Ok((covered == Some(segment_len)).then_some(entries))
    }

    /// Appends one index entry plus the new freshness marker. The caller
    /// (`record`) has just run `find`, which rebuilds a stale index before
    /// this append extends it; a writer dying between the segment and index
    /// writes leaves a mismatched marker, which the next reader repairs by
    /// rescanning.
    fn extend_index(&self, digest: &str, offset: u64, new_len: u64) -> std::io::Result<()> {
        let path = self.dir.join(INDEX);
        let addition = format!("{digest} {offset}\n={new_len}\n");
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        file.write_all(addition.as_bytes())
    }

    /// Rewrites the index from scanned entries.
    fn write_index(&self, entries: &[(RunRecord, u64)], segment_len: u64) -> std::io::Result<()> {
        let mut text = String::new();
        for (rec, offset) in entries {
            text.push_str(&format!("{} {offset}\n", rec.digest()));
        }
        text.push_str(&format!("={segment_len}\n"));
        std::fs::write(self.dir.join(INDEX), text)
    }
}

/// Frames a record line: `crc32(json) as 8 hex digits`, a space, the JSON,
/// a newline.
fn frame(json: &str) -> String {
    format!("{:08x} {json}\n", crc32(json.as_bytes()))
}

/// Verifies and parses one framed line (without its newline).
fn unframe(line: &str) -> Result<RunRecord, String> {
    let (crc_text, json) = line
        .split_once(' ')
        .ok_or_else(|| "missing CRC frame".to_string())?;
    let stated = u32::from_str_radix(crc_text, 16).map_err(|_| "bad CRC field".to_string())?;
    let actual = crc32(json.as_bytes());
    if stated != actual {
        return Err(format!(
            "CRC mismatch (stated {stated:08x}, actual {actual:08x})"
        ));
    }
    RunRecord::from_json(json)
}

/// Reads the framed line starting at `offset`; `None` when the line fails
/// verification (the caller falls back to scanning).
fn read_record_at(file: &mut File, offset: u64) -> Option<RunRecord> {
    file.seek(SeekFrom::Start(offset)).ok()?;
    let mut reader = BufReader::new(file);
    let mut line = Vec::new();
    reader.read_until(b'\n', &mut line).ok()?;
    let text = std::str::from_utf8(&line).ok()?;
    unframe(text.trim_end_matches('\n')).ok()
}

/// Result of scanning one segment: `(record, byte offset)` pairs for every
/// valid line, plus one warning per skipped line.
type ScanOutcome = (Vec<(RunRecord, u64)>, Vec<String>);

/// Scans a whole segment. A final line without a newline is treated as torn
/// (a writer may still be mid-append) and skipped with a warning.
fn scan_segment(path: &Path) -> std::io::Result<ScanOutcome> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let name = path.display();
    let mut records = Vec::new();
    let mut warnings = Vec::new();
    let mut offset = 0usize;
    let mut line_no = 0usize;
    while offset < bytes.len() {
        line_no += 1;
        let rest = &bytes[offset..];
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            warnings.push(format!(
                "{name}:{line_no}: truncated trailing line ({} bytes) skipped",
                rest.len()
            ));
            break;
        };
        let line = &rest[..nl];
        // Bit flips can produce invalid UTF-8; lossy decoding keeps the
        // line comparable and lets the CRC check reject it cleanly.
        match unframe(&String::from_utf8_lossy(line)) {
            Ok(rec) => records.push((rec, offset as u64)),
            Err(why) => warnings.push(format!("{name}:{line_no}: {why}; line skipped")),
        }
        offset += nl + 1;
    }
    Ok((records, warnings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ArmRun;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mab-ledger-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn record(seed: u64) -> RunRecord {
        let mut r = RunRecord::new("fig_test", "0.1.0+abc1234");
        r.config_pair("seed", seed);
        r.config_pair("instructions", 1000);
        r.metrics = vec![("ipc".to_string(), 1.5 + seed as f64)];
        r.arms = vec![ArmRun {
            sweep: 0,
            index: 0,
            seed,
            wall_ns: 10,
        }];
        r.wall_ms = 1.0;
        r
    }

    #[test]
    fn record_then_read_round_trips() {
        let ledger = Ledger::open(temp_dir("roundtrip")).unwrap();
        let r = record(1);
        assert!(matches!(ledger.record(&r).unwrap(), Append::Recorded(_)));
        let out = ledger.read_all().unwrap();
        assert!(out.warnings.is_empty(), "{:?}", out.warnings);
        assert_eq!(out.records, vec![r]);
    }

    #[test]
    fn identical_rerecord_is_a_noop() {
        let ledger = Ledger::open(temp_dir("dedup")).unwrap();
        let r = record(1);
        let first = ledger.record(&r).unwrap();
        // Timing/circumstance fields differ between reruns; dedup ignores
        // them.
        let mut rerun = r.clone();
        rerun.wall_ms = 99.0;
        rerun.started_unix = 7;
        rerun.jobs = 8;
        rerun.arms[0].wall_ns = 12345;
        let second = ledger.record(&rerun).unwrap();
        assert!(matches!(first, Append::Recorded(_)));
        assert!(matches!(second, Append::Deduplicated(_)));
        assert_eq!(first.digest(), second.digest());
        assert_eq!(ledger.read_all().unwrap().records.len(), 1);
    }

    #[test]
    fn rerecord_with_full_64_bit_seeds_still_dedups() {
        // Dedup compares the fresh in-memory record against the *parsed*
        // stored one, so any serialization lossiness (e.g. seeds above
        // f64's 2^53 mantissa) shows up here as a spurious append.
        let ledger = Ledger::open(temp_dir("dedup-seed")).unwrap();
        let mut r = record(1);
        r.arms[0].seed = 13_679_457_532_755_275_413;
        assert!(matches!(ledger.record(&r).unwrap(), Append::Recorded(_)));
        assert!(matches!(
            ledger.record(&r).unwrap(),
            Append::Deduplicated(_)
        ));
        assert_eq!(ledger.read_all().unwrap().records.len(), 1);
    }

    #[test]
    fn conflicting_outcome_same_digest_is_appended() {
        let ledger = Ledger::open(temp_dir("conflict")).unwrap();
        let r = record(1);
        ledger.record(&r).unwrap();
        let mut conflicting = r.clone();
        conflicting.metrics[0].1 += 1.0;
        assert_eq!(conflicting.digest(), r.digest());
        assert!(matches!(
            ledger.record(&conflicting).unwrap(),
            Append::Recorded(_)
        ));
        assert_eq!(ledger.find(&r.digest()).unwrap().len(), 2);
    }

    #[test]
    fn find_uses_the_index_and_survives_staleness() {
        let dir = temp_dir("index");
        let ledger = Ledger::open(&dir).unwrap();
        for seed in 0..10 {
            ledger.record(&record(seed)).unwrap();
        }
        let digest = record(7).digest();
        assert_eq!(ledger.find(&digest).unwrap().len(), 1);
        // Clobber the index: lookups must still succeed (scan fallback)
        // and the index must be rebuilt fresh.
        std::fs::write(dir.join(INDEX), "garbage\n").unwrap();
        assert_eq!(ledger.find(&digest).unwrap().len(), 1);
        let reopened = Ledger::open(&dir).unwrap();
        assert!(reopened.fresh_index().unwrap().is_some());
        // Delete it entirely: same story.
        std::fs::remove_file(dir.join(INDEX)).unwrap();
        assert_eq!(ledger.find(&digest).unwrap().len(), 1);
    }

    #[test]
    fn extra_segments_are_read() {
        let dir = temp_dir("extra");
        let ledger = Ledger::open(&dir).unwrap();
        ledger.record(&record(1)).unwrap();
        let other = record(99);
        std::fs::write(dir.join("imported.jsonl"), frame(&other.to_json())).unwrap();
        let out = ledger.read_all().unwrap();
        assert_eq!(out.records.len(), 2);
        assert_eq!(ledger.find(&other.digest()).unwrap().len(), 1);
    }

    #[test]
    fn corrupt_and_truncated_lines_warn_but_never_panic() {
        let dir = temp_dir("corrupt");
        let ledger = Ledger::open(&dir).unwrap();
        for seed in 0..3 {
            ledger.record(&record(seed)).unwrap();
        }
        let seg = dir.join(SEGMENT);
        let mut bytes = std::fs::read(&seg).unwrap();
        // Flip a byte inside the middle record's JSON.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        // Append garbage, an unframed line, and a torn (no-newline) tail.
        bytes.extend_from_slice(b"deadbeef {\"not\":\"a record\"}\n");
        bytes.extend_from_slice(b"no-frame-here\n");
        bytes.extend_from_slice(b"00000000 {\"torn\":");
        std::fs::write(&seg, &bytes).unwrap();

        let out = ledger.read_all().unwrap();
        assert_eq!(out.records.len(), 2, "{:?}", out.warnings);
        assert_eq!(out.warnings.len(), 4, "{:?}", out.warnings);
        assert!(out.warnings.iter().any(|w| w.contains("CRC mismatch")));
        assert!(out.warnings.iter().any(|w| w.contains("truncated")));
    }

    #[test]
    fn concurrent_appends_from_many_threads_all_land() {
        let dir = temp_dir("threads");
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let dir = dir.clone();
                scope.spawn(move || {
                    // Separate handles per thread: the cross-process case.
                    let ledger = Ledger::open(dir).unwrap();
                    for i in 0..16u64 {
                        ledger.record(&record(t * 100 + i)).unwrap();
                    }
                });
            }
        });
        let ledger = Ledger::open(&dir).unwrap();
        let out = ledger.read_all().unwrap();
        assert!(out.warnings.is_empty(), "{:?}", out.warnings);
        assert_eq!(out.records.len(), 128);
        let mut digests: Vec<String> = out.records.iter().map(RunRecord::digest).collect();
        digests.sort();
        digests.dedup();
        assert_eq!(digests.len(), 128);
    }
}
