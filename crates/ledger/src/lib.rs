//! `mab-ledger`: an append-only, content-addressed run ledger.
//!
//! Every experiment invocation (and every ingested `BENCH_*.json`
//! snapshot) becomes a [`RunRecord`] addressed by a digest over its
//! *identity* — experiment name, canonicalized config, code version — and
//! carrying its *outcome* (key metrics, the per-arm sweep log) and
//! *circumstances* (wall time, worker count, artifact paths). Records live
//! in CRC-framed JSONL segments under `results/ledger/` with a digest
//! index for O(1) lookup ([`store`]).
//!
//! Three properties make the ledger the substrate for cross-run tooling
//! (`mab-inspect history`/`trend`/`regress`) and for `mab-serve`'s planned
//! result cache:
//!
//! - **content addressing** — the digest ignores scheduling and timing, so
//!   "has this exact (experiment, config, code) run before?" is one index
//!   probe;
//! - **idempotent re-records** — recording a run whose digest *and* outcome
//!   already exist is a no-op append, which determinism (see `mab-runner`)
//!   guarantees for honest reruns and which makes memoization sound;
//! - **corruption tolerance** — every line is CRC-framed; damaged or torn
//!   lines are skipped with warnings, never panics, so a shared
//!   append-only history degrades gracefully.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod json;
pub mod record;
pub mod store;

pub use bench::{file_metrics, ingest_bench_file};
pub use record::{code_version, config_digest, ArmRun, RunRecord};
pub use store::{Append, Ledger, ReadOutcome};
