//! Ingestion of `BENCH_*.json` snapshots into the ledger.
//!
//! The benches under `crates/bench` write flat JSON objects (numbers,
//! booleans, strings, string arrays) pinning the perf trajectory. Ingesting
//! one turns it into a [`RunRecord`] — experiment `bench:<name>`, numeric
//! and boolean fields as metrics, string fields as config — so
//! `mab-inspect trend`/`regress` can query benchmark history through the
//! same store as experiment runs. Re-ingesting an unchanged file under the
//! same code version deduplicates to a no-op append.

use crate::json::{self, JsonValue};
use crate::record::RunRecord;
use std::path::Path;

/// Builds a [`RunRecord`] from a flat benchmark JSON file.
///
/// Field mapping: the `bench` field (or the file stem) names the
/// experiment as `bench:<name>`; numbers become metrics; booleans become
/// metrics valued 1/0; strings and string arrays become config pairs. The
/// record is stamped with the *current* [`crate::code_version`] (ingestion
/// records "this code's bench results", exactly like a live run would) and
/// the file's mtime as the start timestamp, so a trajectory of ingested
/// snapshots orders naturally.
///
/// # Errors
///
/// Returns a message when the file cannot be read or is not a flat JSON
/// object.
pub fn ingest_bench_file(path: &Path) -> Result<RunRecord, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let value = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let JsonValue::Obj(pairs) = &value else {
        return Err(format!("{}: expected a JSON object", path.display()));
    };
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string();
    let name = value
        .get("bench")
        .and_then(JsonValue::as_str)
        .unwrap_or(&stem);
    let mut record = RunRecord::new(&format!("bench:{name}"), &crate::code_version());
    record.config_pair(
        "source",
        path.file_name().unwrap_or_default().to_string_lossy(),
    );
    for (key, val) in pairs {
        if key == "bench" {
            continue;
        }
        match val {
            JsonValue::Int(i) => record.metrics.push((key.clone(), *i as f64)),
            JsonValue::Num(n) => record.metrics.push((key.clone(), *n)),
            JsonValue::Bool(b) => record.metrics.push((key.clone(), f64::from(u8::from(*b)))),
            JsonValue::Str(s) => record.config_pair(key, s),
            JsonValue::Arr(items) => {
                let joined: Vec<&str> = items.iter().filter_map(JsonValue::as_str).collect();
                record.config_pair(key, joined.join(","));
            }
            JsonValue::Null | JsonValue::Obj(_) => {}
        }
    }
    record.started_unix = std::fs::metadata(path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
        .map_or(0, |d| d.as_secs());
    Ok(record)
}

/// Flattens any flat JSON object file into `(name, value)` metric pairs —
/// numbers as-is, booleans as 1/0 — the comparison form `mab-inspect
/// regress` uses for `--baseline-file`/file candidates.
///
/// # Errors
///
/// Returns a message when the file cannot be read or is not a flat JSON
/// object.
pub fn file_metrics(path: &Path) -> Result<Vec<(String, f64)>, String> {
    Ok(ingest_bench_file(path)?.metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, body: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("{name}-{}.json", std::process::id()));
        std::fs::write(&path, body).unwrap();
        path
    }

    #[test]
    fn bench_json_maps_to_metrics_and_config() {
        let path = write_temp(
            "mab-bench-ingest",
            "{\"bench\":\"trace_io\",\"records\":200000,\"bytes_per_record\":4.634,\
             \"replay_pass\":true,\"sweep_app\":\"mcf\",\
             \"sweep_configs\":[\"stride\",\"bingo\"]}",
        );
        let rec = ingest_bench_file(&path).unwrap();
        assert_eq!(rec.experiment, "bench:trace_io");
        assert_eq!(rec.metric("records"), Some(200_000.0));
        assert_eq!(rec.metric("bytes_per_record"), Some(4.634));
        assert_eq!(rec.metric("replay_pass"), Some(1.0));
        assert_eq!(rec.config_value("sweep_app"), Some("mcf"));
        assert_eq!(rec.config_value("sweep_configs"), Some("stride,bingo"));
        assert!(rec
            .config_value("source")
            .unwrap()
            .contains("mab-bench-ingest"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn reingesting_the_same_file_matches_outcome() {
        let path = write_temp(
            "mab-bench-dedup",
            "{\"bench\":\"x\",\"v\":1.0,\"pass\":true}",
        );
        let a = ingest_bench_file(&path).unwrap();
        let b = ingest_bench_file(&path).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert!(a.same_outcome(&b));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn non_object_files_error() {
        let path = write_temp("mab-bench-bad", "[1,2,3]");
        assert!(ingest_bench_file(&path).is_err());
        std::fs::remove_file(path).ok();
        assert!(ingest_bench_file(Path::new("/nonexistent.json")).is_err());
    }
}
