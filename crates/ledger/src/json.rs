//! A minimal JSON parser (and string/number writer) for the workspace's
//! JSONL artifacts.
//!
//! The offline build has no serde_json, and the shimmed `serde` is a no-op,
//! so parsing is hand-rolled — mirroring the hand-rolled writers in
//! `mab-telemetry::export` and `mab-telemetry::trace`. The subset is full
//! JSON minus exotic escapes: objects, arrays, strings (with `\"`, `\\`,
//! `\n`, `\t`, `\r`, `\uXXXX`), numbers, booleans and `null` — more than
//! enough for the flat single-line records the exporters emit.
//!
//! This module started life in `mab-inspect`; it lives in `mab-ledger` now
//! so the run ledger (the lowest layer that both records and reads JSONL)
//! owns it, and `mab-inspect` re-exports it unchanged.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also how the exporters encode NaN/∞ floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A plain non-negative integer token, held exactly. Arm seeds are full
    /// 64-bit values, so routing them through `f64` (2^53 mantissa) would
    /// silently round them and break `parse → format → parse` round trips.
    Int(u64),
    /// Any other JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if numeric and representable.
    /// Integer tokens are returned exactly (no `f64` rounding).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(v) => Some(*v),
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric array → `Vec<f64>`, mapping `null` entries (NaN at emit time)
    /// back to NaN. `None` if not an array or an entry is non-numeric.
    pub fn as_f64_vec(&self) -> Option<Vec<f64>> {
        let items = self.as_arr()?;
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            match item {
                JsonValue::Int(v) => out.push(*v as f64),
                JsonValue::Num(v) => out.push(*v),
                JsonValue::Null => out.push(f64::NAN),
                _ => return None,
            }
        }
        Some(out)
    }
}

/// Parses one JSON document from `input` (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

/// Escapes `s` for embedding in a JSON string literal (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number. Rust's shortest-round-trip `Display`
/// keeps `parse → format → parse` lossless; NaN and ±∞ (not representable
/// in JSON) become `null`, matching the telemetry exporters.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        // Plain integer tokens keep full 64-bit precision; anything with a
        // sign, fraction or exponent (and integers past u64) stays f64.
        if let Ok(v) = text.parse::<u64>() {
            return Ok(JsonValue::Int(v));
        }
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).unwrap();
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (may be multi-byte).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_decision_line() {
        let line = "{\"kind\":\"decision\",\"seq\":4,\"agent\":7,\"explore\":true,\
                    \"phase\":\"main\",\"reward\":null,\"q\":[0.5,null,1]}";
        let v = parse(line).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("decision"));
        assert_eq!(v.get("seq").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("explore").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("reward"), Some(&JsonValue::Null));
        let q = v.get("q").unwrap().as_f64_vec().unwrap();
        assert_eq!(q[0], 0.5);
        assert!(q[1].is_nan());
        assert_eq!(q[2], 1.0);
    }

    #[test]
    fn parses_nested_and_escaped() {
        let v = parse("{\"a\": [1, {\"b\": \"x\\n\\u0041\"}], \"c\": -2.5e3}").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x\nA"));
        assert_eq!(v.get("c").unwrap().as_f64(), Some(-2500.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\rf\u{1}g";
        let doc = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn fmt_f64_round_trips_and_nulls_non_finite() {
        for v in [0.0, -1.5, 0.1, 1e300, 123456789.0_f64] {
            let text = fmt_f64(v);
            assert_eq!(text.parse::<f64>().unwrap(), v, "{text}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn integer_tokens_keep_full_u64_precision() {
        // Seeds are full 64-bit values; above 2^53 an f64 detour would
        // round them (this exact value rounds to ...413 → ...412).
        let doc = format!(
            "{{\"seed\": {}, \"max\": {}}}",
            13679457532755275413u64,
            u64::MAX
        );
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(13679457532755275413));
        assert_eq!(v.get("max").unwrap().as_u64(), Some(u64::MAX));
        // Huge integers that overflow u64 still parse, as f64.
        let big = parse("{\"x\": 99999999999999999999999}").unwrap();
        assert_eq!(big.get("x").unwrap().as_f64(), Some(1e23));
    }

    #[test]
    fn non_integer_is_not_u64() {
        let v = parse("{\"x\": 1.5, \"y\": -3}").unwrap();
        assert_eq!(v.get("x").unwrap().as_u64(), None);
        assert_eq!(v.get("y").unwrap().as_u64(), None);
        assert_eq!(v.get("y").unwrap().as_f64(), Some(-3.0));
    }
}
