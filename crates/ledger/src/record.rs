//! The ledger's unit of storage: one [`RunRecord`] per experiment
//! invocation (or ingested bench snapshot).
//!
//! A record separates three kinds of fields:
//!
//! - **identity** — experiment name, canonicalized config pairs and the code
//!   version. These (and only these) feed the content-address
//!   ([`RunRecord::digest`]), so a digest names "this experiment, with this
//!   configuration, built from this code" regardless of when, where, or at
//!   what `--jobs` setting it ran.
//! - **outcome** — key output metrics and the per-arm sweep log. Outcomes
//!   are deterministic functions of the identity (see `mab-runner`'s
//!   scheduling-invariance discipline), so two records with equal digests
//!   should agree here; [`RunRecord::same_outcome`] checks exactly that and
//!   backs the store's no-op re-record behaviour.
//! - **circumstance** — wall time, start timestamp, worker count and
//!   artifact paths. Never compared, never digested: reruns differ here by
//!   nature.

use crate::json::{self, JsonValue};

/// One sweep-arm execution inside a run, as observed by `mab-runner`.
///
/// `sweep` and `index` follow the runner's ordered-slot discipline: `sweep`
/// counts the sweeps the run started (in program order) and `index` is the
/// arm's position in that sweep's spec queue — so the `(sweep, index, seed)`
/// triple is identical at any `--jobs` setting. `wall_ns` is circumstance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArmRun {
    /// Sweep sequence number within the run (order of sweep starts).
    pub sweep: u32,
    /// Spec index within the sweep.
    pub index: u32,
    /// The arm's derived child seed.
    pub seed: u64,
    /// Arm wall time in nanoseconds (timing field, excluded from identity).
    pub wall_ns: u64,
}

/// One ledger entry: the identity, outcome and circumstances of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Experiment name (binary name, or `bench:<name>` for ingested
    /// benchmark snapshots).
    pub experiment: String,
    /// Code version: crate version plus short git revision, see
    /// [`code_version`].
    pub code: String,
    /// Canonicalized configuration pairs, sorted by key.
    pub config: Vec<(String, String)>,
    /// Worker threads the run used (circumstance: results are identical at
    /// any setting, so this never enters the digest).
    pub jobs: u64,
    /// Unix timestamp when the run started (circumstance).
    pub started_unix: u64,
    /// Run wall time in milliseconds (circumstance).
    pub wall_ms: f64,
    /// Key output stats: counter totals, histogram means, reported values.
    pub metrics: Vec<(String, f64)>,
    /// Per-arm sweep log, sorted by `(sweep, index)`.
    pub arms: Vec<ArmRun>,
    /// Pointers to the run's exported artifacts (telemetry, trace, profile),
    /// as `(kind, path)` pairs (circumstance).
    pub artifacts: Vec<(String, String)>,
    /// Live-monitor endpoint the run served (`--monitor`), if any
    /// (circumstance). Lets post-hoc queries cross-reference which runs
    /// were observed live.
    pub monitor: Option<String>,
    /// `/metrics` + `/status` scrapes the monitor served during the run
    /// (circumstance).
    pub monitor_scrapes: u64,
    /// `mab-serve` job that produced or served this result (`client:job-id`),
    /// if the run went through the sweep daemon (circumstance).
    pub served: Option<String>,
    /// True when the daemon answered this result from its content-addressed
    /// cache instead of executing the arm locally (circumstance). Only
    /// meaningful together with [`RunRecord::served`].
    pub cache_hit: bool,
    /// Logical CPUs on the host that ran this (circumstance; 0 = unknown).
    /// Makes cross-host `trend`/`regress` wall-time comparisons attributable.
    pub cpus: u64,
    /// Hot-loop kernel implementation the run used (`"simd"`, or `"scalar"`
    /// under `MAB_SCALAR_KERNELS=1`), if recorded (circumstance).
    pub kernel_mode: Option<String>,
    /// Hostname of the machine that ran this, if recorded (circumstance).
    pub host: Option<String>,
}

impl RunRecord {
    /// A record with the given identity and everything else empty.
    pub fn new(experiment: &str, code: &str) -> Self {
        RunRecord {
            experiment: experiment.to_string(),
            code: code.to_string(),
            config: Vec::new(),
            jobs: 1,
            started_unix: 0,
            wall_ms: 0.0,
            metrics: Vec::new(),
            arms: Vec::new(),
            artifacts: Vec::new(),
            monitor: None,
            monitor_scrapes: 0,
            served: None,
            cache_hit: false,
            cpus: 0,
            kernel_mode: None,
            host: None,
        }
    }

    /// Adds a config pair, keeping the list sorted by key.
    pub fn config_pair(&mut self, key: &str, value: impl ToString) {
        self.config.push((key.to_string(), value.to_string()));
        self.config.sort();
    }

    /// The record's content address: 16 lowercase hex digits of an FNV-1a
    /// hash over the canonicalized identity (experiment, sorted config
    /// pairs, code version). Stable across reruns, `--jobs` settings and
    /// field-order changes in the serialized form.
    pub fn digest(&self) -> String {
        config_digest(&self.experiment, &self.config, &self.code)
    }

    /// True when `other` describes the same run outcome: identical identity
    /// fields, metrics, and arm log modulo the timing fields (`wall_ms`,
    /// `started_unix`, per-arm `wall_ns`) and circumstances (`jobs`,
    /// artifact paths). The store skips appending an exact re-record.
    pub fn same_outcome(&self, other: &RunRecord) -> bool {
        self.experiment == other.experiment
            && self.code == other.code
            && self.config == other.config
            && self.metrics == other.metrics
            && self.arms.len() == other.arms.len()
            && self
                .arms
                .iter()
                .zip(&other.arms)
                .all(|(a, b)| (a.sweep, a.index, a.seed) == (b.sweep, b.index, b.seed))
    }

    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a config value by key.
    pub fn config_value(&self, key: &str) -> Option<&str> {
        self.config
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Serializes the record as one line of JSON (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"v\":1");
        out.push_str(&format!(",\"digest\":\"{}\"", self.digest()));
        out.push_str(&format!(
            ",\"experiment\":\"{}\"",
            json::escape(&self.experiment)
        ));
        out.push_str(&format!(",\"code\":\"{}\"", json::escape(&self.code)));
        out.push_str(",\"config\":{");
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":\"{}\"", json::escape(k), json::escape(v)));
        }
        out.push('}');
        out.push_str(&format!(",\"jobs\":{}", self.jobs));
        out.push_str(&format!(",\"started_unix\":{}", self.started_unix));
        out.push_str(&format!(",\"wall_ms\":{}", json::fmt_f64(self.wall_ms)));
        out.push_str(",\"metrics\":{");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json::escape(k), json::fmt_f64(*v)));
        }
        out.push('}');
        out.push_str(",\"arms\":[");
        for (i, arm) in self.arms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"sweep\":{},\"index\":{},\"seed\":{},\"wall_ns\":{}}}",
                arm.sweep, arm.index, arm.seed, arm.wall_ns
            ));
        }
        out.push(']');
        if let Some(endpoint) = &self.monitor {
            out.push_str(&format!(
                ",\"monitor\":\"{}\",\"monitor_scrapes\":{}",
                json::escape(endpoint),
                self.monitor_scrapes
            ));
        }
        if let Some(served) = &self.served {
            out.push_str(&format!(
                ",\"served\":\"{}\",\"cache_hit\":{}",
                json::escape(served),
                self.cache_hit
            ));
        }
        if self.cpus != 0 {
            out.push_str(&format!(",\"cpus\":{}", self.cpus));
        }
        if let Some(mode) = &self.kernel_mode {
            out.push_str(&format!(",\"kernel_mode\":\"{}\"", json::escape(mode)));
        }
        if let Some(host) = &self.host {
            out.push_str(&format!(",\"host\":\"{}\"", json::escape(host)));
        }
        out.push_str(",\"artifacts\":{");
        for (i, (k, v)) in self.artifacts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":\"{}\"", json::escape(k), json::escape(v)));
        }
        out.push_str("}}");
        out
    }

    /// Parses a record from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not valid JSON or lacks the
    /// required fields.
    pub fn from_json(text: &str) -> Result<RunRecord, String> {
        let v = json::parse(text)?;
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{key}'"))
        };
        let pairs = |key: &str| -> Result<Vec<(String, JsonValue)>, String> {
            match v.get(key) {
                Some(JsonValue::Obj(pairs)) => Ok(pairs.clone()),
                _ => Err(format!("missing object field '{key}'")),
            }
        };
        let mut record = RunRecord::new(&str_field("experiment")?, &str_field("code")?);
        for (k, val) in pairs("config")? {
            match val.as_str() {
                Some(s) => record.config.push((k, s.to_string())),
                None => return Err("non-string config value".to_string()),
            }
        }
        record.config.sort();
        record.jobs = v.get("jobs").and_then(JsonValue::as_u64).unwrap_or(1);
        record.started_unix = v
            .get("started_unix")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        record.wall_ms = v.get("wall_ms").and_then(JsonValue::as_f64).unwrap_or(0.0);
        for (k, val) in pairs("metrics")? {
            // NaN (emitted as null) survives the round trip.
            let num = val.as_f64().unwrap_or(f64::NAN);
            record.metrics.push((k, num));
        }
        if let Some(arms) = v.get("arms").and_then(JsonValue::as_arr) {
            for arm in arms {
                let field = |key: &str| arm.get(key).and_then(JsonValue::as_u64);
                record.arms.push(ArmRun {
                    sweep: field("sweep").ok_or("arm missing 'sweep'")? as u32,
                    index: field("index").ok_or("arm missing 'index'")? as u32,
                    seed: field("seed").ok_or("arm missing 'seed'")?,
                    wall_ns: field("wall_ns").unwrap_or(0),
                });
            }
        }
        record.monitor = v
            .get("monitor")
            .and_then(JsonValue::as_str)
            .map(str::to_string);
        record.monitor_scrapes = v
            .get("monitor_scrapes")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        record.served = v
            .get("served")
            .and_then(JsonValue::as_str)
            .map(str::to_string);
        record.cache_hit = v
            .get("cache_hit")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false);
        record.cpus = v.get("cpus").and_then(JsonValue::as_u64).unwrap_or(0);
        record.kernel_mode = v
            .get("kernel_mode")
            .and_then(JsonValue::as_str)
            .map(str::to_string);
        record.host = v
            .get("host")
            .and_then(JsonValue::as_str)
            .map(str::to_string);
        if let Some(JsonValue::Obj(arts)) = v.get("artifacts") {
            for (k, val) in arts {
                if let Some(s) = val.as_str() {
                    record.artifacts.push((k.clone(), s.to_string()));
                }
            }
        }
        Ok(record)
    }
}

/// The ledger's content address for a run identity: 16 lowercase hex digits
/// of an FNV-1a hash over the canonicalized `(experiment, sorted config
/// pairs, code version)` triple. This is the workspace-wide cache key —
/// `mab-serve` addresses its result cache with it — so any consumer that
/// needs "the digest this run would be recorded under" must call this (or
/// [`RunRecord::digest`], which delegates here) rather than reimplement it.
///
/// `config` must already be sorted by key (as [`RunRecord::config_pair`]
/// maintains); the canonical form is
/// `experiment '\n' (key '=' value '\n')* code`.
pub fn config_digest(experiment: &str, config: &[(String, String)], code: &str) -> String {
    let mut canon = String::new();
    canon.push_str(experiment);
    canon.push('\n');
    for (k, v) in config {
        canon.push_str(k);
        canon.push('=');
        canon.push_str(v);
        canon.push('\n');
    }
    canon.push_str(code);
    format!("{:016x}", fnv1a64(canon.as_bytes()))
}

/// 64-bit FNV-1a over `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The running code's version string: `<crate version>+<short git rev>`,
/// with `unknown` when no `.git` is reachable from the working directory.
/// Part of every record's identity, so results from different code states
/// never collide under one digest.
pub fn code_version() -> String {
    format!(
        "{}+{}",
        env!("CARGO_PKG_VERSION"),
        git_rev().unwrap_or_else(|| "unknown".to_string())
    )
}

/// Reads the checked-out revision by following `.git/HEAD` upward from the
/// current directory — no `git` subprocess, so it works in minimal
/// containers and costs microseconds.
fn git_rev() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let head = dir.join(".git").join("HEAD");
        if head.is_file() {
            let text = std::fs::read_to_string(&head).ok()?;
            let text = text.trim();
            let full = match text.strip_prefix("ref: ") {
                Some(r) => match std::fs::read_to_string(dir.join(".git").join(r)) {
                    Ok(s) => s.trim().to_string(),
                    // A just-packed ref lives in packed-refs instead.
                    Err(_) => {
                        let packed =
                            std::fs::read_to_string(dir.join(".git").join("packed-refs")).ok()?;
                        packed
                            .lines()
                            .find(|l| l.trim_end().ends_with(r))
                            .and_then(|l| l.split_whitespace().next())
                            .map(str::to_string)?
                    }
                },
                None => text.to_string(),
            };
            return (full.len() >= 7 && full.bytes().all(|b| b.is_ascii_hexdigit()))
                .then(|| full[..7].to_string());
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunRecord {
        let mut r = RunRecord::new("fig08_singlecore", "0.1.0+abc1234");
        r.config_pair("seed", 42);
        r.config_pair("instructions", 700_000);
        r.config_pair("quick", false);
        r.jobs = 8;
        r.started_unix = 1_754_000_000;
        r.wall_ms = 123.5;
        r.metrics = vec![
            ("arm_pulls".to_string(), 1234.0),
            ("hist:reward:mean".to_string(), 0.5125),
        ];
        r.arms = vec![
            ArmRun {
                sweep: 0,
                index: 0,
                seed: 7,
                wall_ns: 1000,
            },
            ArmRun {
                sweep: 0,
                index: 1,
                seed: 9,
                wall_ns: 1200,
            },
        ];
        r.artifacts = vec![("telemetry".to_string(), "results/x.jsonl".to_string())];
        r
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let r = sample();
        let parsed = RunRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(r, parsed);
        assert_eq!(r.digest(), parsed.digest());
    }

    #[test]
    fn full_64_bit_seeds_round_trip_exactly() {
        // Derived child seeds use all 64 bits. If the JSON layer routed
        // them through f64, every stored arm seed would come back rounded
        // and `same_outcome` against a stored record could never hold —
        // which silently disables the store's re-record dedup.
        let mut r = sample();
        r.arms[0].seed = 13_679_457_532_755_275_413;
        r.arms[1].seed = u64::MAX;
        let parsed = RunRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.arms[0].seed, 13_679_457_532_755_275_413);
        assert_eq!(parsed.arms[1].seed, u64::MAX);
        assert!(r.same_outcome(&parsed));
    }

    #[test]
    fn monitor_circumstance_round_trips() {
        let mut r = sample();
        r.monitor = Some("127.0.0.1:9464".to_string());
        r.monitor_scrapes = 17;
        let parsed = RunRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.monitor.as_deref(), Some("127.0.0.1:9464"));
        assert_eq!(parsed.monitor_scrapes, 17);
        // Absent on unmonitored records (and in their JSON).
        let plain = sample();
        assert!(!plain.to_json().contains("monitor"), "{}", plain.to_json());
        assert_eq!(
            RunRecord::from_json(&plain.to_json()).unwrap().monitor,
            None
        );
    }

    #[test]
    fn serve_circumstance_round_trips() {
        let mut r = sample();
        r.served = Some("agent-7:12".to_string());
        r.cache_hit = true;
        let parsed = RunRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.served.as_deref(), Some("agent-7:12"));
        assert!(parsed.cache_hit);
        assert!(r.same_outcome(&parsed));
        // Absent on direct runs (and in their JSON).
        let plain = sample();
        assert!(!plain.to_json().contains("served"), "{}", plain.to_json());
        assert!(!plain.to_json().contains("cache_hit"));
        let reparsed = RunRecord::from_json(&plain.to_json()).unwrap();
        assert_eq!(reparsed.served, None);
        assert!(!reparsed.cache_hit);
    }

    #[test]
    fn host_circumstance_round_trips() {
        let mut r = sample();
        r.cpus = 8;
        r.kernel_mode = Some("scalar".to_string());
        r.host = Some("ci-runner-3".to_string());
        let parsed = RunRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.cpus, 8);
        assert_eq!(parsed.kernel_mode.as_deref(), Some("scalar"));
        assert_eq!(parsed.host.as_deref(), Some("ci-runner-3"));
        assert!(r.same_outcome(&parsed));
        // Absent when unrecorded (and in the JSON).
        let plain = sample();
        assert!(!plain.to_json().contains("kernel_mode"), "{}", plain.to_json());
        assert!(!plain.to_json().contains("\"host\""));
        assert!(!plain.to_json().contains("\"cpus\""));
        let reparsed = RunRecord::from_json(&plain.to_json()).unwrap();
        assert_eq!(reparsed.cpus, 0);
        assert_eq!(reparsed.kernel_mode, None);
        assert_eq!(reparsed.host, None);
    }

    #[test]
    fn config_digest_matches_record_digest() {
        let r = sample();
        assert_eq!(config_digest(&r.experiment, &r.config, &r.code), r.digest());
        // The helper is order-sensitive by contract: callers pass the
        // already-sorted pairs `config_pair` maintains.
        assert_eq!(config_digest("x", &[], "c").len(), 16);
        assert_ne!(config_digest("x", &[], "c"), config_digest("y", &[], "c"));
    }

    #[test]
    fn digest_ignores_circumstance_fields() {
        let mut a = sample();
        let mut b = sample();
        b.jobs = 1;
        b.wall_ms = 9.9;
        b.started_unix = 1;
        b.artifacts.clear();
        b.metrics.clear();
        b.monitor = Some("127.0.0.1:1".to_string());
        b.monitor_scrapes = 3;
        b.served = Some("ci:4".to_string());
        b.cache_hit = true;
        b.cpus = 128;
        b.kernel_mode = Some("scalar".to_string());
        b.host = Some("elsewhere".to_string());
        assert_eq!(a.digest(), b.digest());
        // …but any identity change produces a new digest.
        b.config_pair("mixes", 40);
        assert_ne!(a.digest(), b.digest());
        a.code = "0.1.0+fffffff".to_string();
        assert_ne!(a.digest(), sample().digest());
    }

    #[test]
    fn digest_is_insensitive_to_config_insertion_order() {
        let mut a = RunRecord::new("x", "c");
        a.config_pair("b", 2);
        a.config_pair("a", 1);
        let mut b = RunRecord::new("x", "c");
        b.config_pair("a", 1);
        b.config_pair("b", 2);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn same_outcome_ignores_timing_but_not_results() {
        let a = sample();
        let mut b = sample();
        b.wall_ms = 0.1;
        b.started_unix = 5;
        b.jobs = 1;
        b.arms[0].wall_ns = 999_999;
        b.artifacts.clear();
        assert!(a.same_outcome(&b));
        b.metrics[0].1 += 1.0;
        assert!(!a.same_outcome(&b));
        let mut c = sample();
        c.arms[1].seed = 1;
        assert!(!a.same_outcome(&c));
    }

    #[test]
    fn escaped_names_survive() {
        let mut r = RunRecord::new("odd \"name\"\n", "c\\v");
        r.config_pair("path", "a\tb");
        let parsed = RunRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(r, parsed);
    }

    #[test]
    fn code_version_has_version_and_rev() {
        let code = code_version();
        assert!(code.starts_with(env!("CARGO_PKG_VERSION")), "{code}");
        assert!(code.contains('+'), "{code}");
    }

    #[test]
    fn metric_and_config_lookup() {
        let r = sample();
        assert_eq!(r.metric("arm_pulls"), Some(1234.0));
        assert_eq!(r.metric("missing"), None);
        assert_eq!(r.config_value("seed"), Some("42"));
        assert_eq!(r.config_value("nope"), None);
    }
}
