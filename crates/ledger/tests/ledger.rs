//! End-to-end exercise of the public `mab-ledger` API: bench ingestion
//! through the store, digest lookup, and idempotent re-records.

use mab_ledger::{ingest_bench_file, Append, Ledger, RunRecord};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mab-ledger-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn ingest_record_lookup_pipeline() {
    let dir = temp_dir("pipeline");
    let bench = dir.join("BENCH_fake.json");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        &bench,
        "{\"bench\":\"fake\",\"speedup\":1.25,\"pass\":true,\"host\":\"ci\"}",
    )
    .unwrap();

    let ledger = Ledger::open(dir.join("ledger")).unwrap();
    let record = ingest_bench_file(&bench).unwrap();
    let first = ledger.record(&record).unwrap();
    assert!(matches!(first, Append::Recorded(_)));

    // Ingesting the identical file again under the same code version is a
    // no-op append — the CI smoke job's "digest-stable re-record" check.
    let again = ingest_bench_file(&bench).unwrap();
    assert!(matches!(
        ledger.record(&again).unwrap(),
        Append::Deduplicated(_)
    ));

    // O(1) digest lookup returns the stored record.
    let found = ledger.find(first.digest()).unwrap();
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].experiment, "bench:fake");
    assert_eq!(found[0].metric("speedup"), Some(1.25));

    // A changed result under the same identity appends (history preserved).
    let mut changed = record.clone();
    changed
        .metrics
        .iter_mut()
        .find(|(k, _)| k == "speedup")
        .unwrap()
        .1 = 1.10;
    assert!(matches!(
        ledger.record(&changed).unwrap(),
        Append::Recorded(_)
    ));
    assert_eq!(ledger.find(first.digest()).unwrap().len(), 2);
    assert_eq!(ledger.read_all().unwrap().records.len(), 2);
}

/// A damaged shared ledger must stay readable: every corrupt line is
/// skipped with a warning naming the segment and line, intact records
/// before *and after* the damage survive, and nothing panics — the
/// guarantee `mab-inspect history` (which prints the warnings to stderr)
/// and the regression gates rely on.
#[test]
fn corrupt_lines_are_skipped_with_warnings_not_panics() {
    let dir = temp_dir("corrupt");
    let record = |seed: u64| {
        let mut rec = RunRecord::new("fig_corrupt", &mab_ledger::code_version());
        rec.config_pair("seed", seed);
        rec.metrics.push(("ipc".to_string(), 1.0 + seed as f64));
        rec
    };
    {
        let ledger = Ledger::open(&dir).unwrap();
        ledger.record(&record(1)).unwrap();
        ledger.record(&record(2)).unwrap();
        ledger.record(&record(3)).unwrap();
    }

    // Vandalize the write segment: flip bytes inside the middle record's
    // JSON (CRC mismatch) and append a line that is not framed at all.
    let segment = dir.join("ledger.jsonl");
    let text = std::fs::read_to_string(&segment).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    assert_eq!(lines.len(), 3);
    lines[1] = lines[1].replace("fig_corrupt", "fig_mangled");
    let mut vandalized = lines.join("\n");
    vandalized.push_str("\nthis-line-was-never-framed\n");
    std::fs::write(&segment, vandalized).unwrap();

    let ledger = Ledger::open(&dir).unwrap();
    let out = ledger.read_all().unwrap();
    assert_eq!(out.records.len(), 2, "{:?}", out.warnings);
    let seeds: Vec<_> = out
        .records
        .iter()
        .map(|r| r.config.iter().find(|(k, _)| k == "seed").unwrap().1.clone())
        .collect();
    assert_eq!(seeds, ["1", "3"], "records around the damage must survive");
    assert_eq!(out.warnings.len(), 2, "{:?}", out.warnings);
    assert!(out.warnings[0].contains("CRC mismatch") && out.warnings[0].contains(":2"));
    assert!(out.warnings[1].contains("line skipped"));

    // The damaged ledger still accepts appends, and the new record is
    // readable alongside the survivors.
    assert!(matches!(
        ledger.record(&record(4)).unwrap(),
        Append::Recorded(_)
    ));

    // A torn final line with no newline (a writer killed mid-append) is
    // reported as truncated, costs exactly itself, and nothing else.
    let mut torn = std::fs::read_to_string(&segment).unwrap();
    torn.push_str("00000000 {\"torn\":");
    std::fs::write(&segment, torn).unwrap();
    let again = ledger.read_all().unwrap();
    assert_eq!(again.records.len(), 3, "{:?}", again.warnings);
    assert_eq!(again.warnings.len(), 3, "{:?}", again.warnings);
    assert!(again.warnings[2].contains("truncated trailing line"));
}

#[test]
fn records_survive_reopen_across_handles() {
    let dir = temp_dir("reopen");
    let mut rec = RunRecord::new("fig_test", &mab_ledger::code_version());
    rec.config_pair("seed", 3);
    rec.metrics.push(("ipc".to_string(), 2.0));
    {
        let ledger = Ledger::open(&dir).unwrap();
        ledger.record(&rec).unwrap();
    }
    let ledger = Ledger::open(&dir).unwrap();
    let out = ledger.read_all().unwrap();
    assert!(out.warnings.is_empty());
    assert_eq!(out.records.len(), 1);
    assert!(out.records[0].same_outcome(&rec));
    assert!(matches!(
        ledger.record(&rec).unwrap(),
        Append::Deduplicated(_)
    ));
}
