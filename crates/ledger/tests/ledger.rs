//! End-to-end exercise of the public `mab-ledger` API: bench ingestion
//! through the store, digest lookup, and idempotent re-records.

use mab_ledger::{ingest_bench_file, Append, Ledger, RunRecord};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mab-ledger-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn ingest_record_lookup_pipeline() {
    let dir = temp_dir("pipeline");
    let bench = dir.join("BENCH_fake.json");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        &bench,
        "{\"bench\":\"fake\",\"speedup\":1.25,\"pass\":true,\"host\":\"ci\"}",
    )
    .unwrap();

    let ledger = Ledger::open(dir.join("ledger")).unwrap();
    let record = ingest_bench_file(&bench).unwrap();
    let first = ledger.record(&record).unwrap();
    assert!(matches!(first, Append::Recorded(_)));

    // Ingesting the identical file again under the same code version is a
    // no-op append — the CI smoke job's "digest-stable re-record" check.
    let again = ingest_bench_file(&bench).unwrap();
    assert!(matches!(
        ledger.record(&again).unwrap(),
        Append::Deduplicated(_)
    ));

    // O(1) digest lookup returns the stored record.
    let found = ledger.find(first.digest()).unwrap();
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].experiment, "bench:fake");
    assert_eq!(found[0].metric("speedup"), Some(1.25));

    // A changed result under the same identity appends (history preserved).
    let mut changed = record.clone();
    changed
        .metrics
        .iter_mut()
        .find(|(k, _)| k == "speedup")
        .unwrap()
        .1 = 1.10;
    assert!(matches!(
        ledger.record(&changed).unwrap(),
        Append::Recorded(_)
    ));
    assert_eq!(ledger.find(first.digest()).unwrap().len(), 2);
    assert_eq!(ledger.read_all().unwrap().records.len(), 2);
}

#[test]
fn records_survive_reopen_across_handles() {
    let dir = temp_dir("reopen");
    let mut rec = RunRecord::new("fig_test", &mab_ledger::code_version());
    rec.config_pair("seed", 3);
    rec.metrics.push(("ipc".to_string(), 2.0));
    {
        let ledger = Ledger::open(&dir).unwrap();
        ledger.record(&rec).unwrap();
    }
    let ledger = Ledger::open(&dir).unwrap();
    let out = ledger.read_all().unwrap();
    assert!(out.warnings.is_empty());
    assert_eq!(out.records.len(), 1);
    assert!(out.records[0].same_outcome(&rec));
    assert!(matches!(
        ledger.record(&rec).unwrap(),
        Append::Deduplicated(_)
    ));
}
