//! System wiring: cores, private L1/L2, shared LLC and DRAM.
//!
//! Matches the paper's setup (§6.1): the prefetcher is associated with the
//! L2, trained on L1 misses (i.e. L2 demand accesses) and fills prefetched
//! lines into L2 and LLC. Multi-core systems share the LLC and the DRAM
//! channel, so one core's prefetch aggression raises everyone's latency —
//! the effect behind §4.3's round-robin restart and Fig. 14.

use crate::cache::{Cache, CacheStats, LookupResult, Mshr};
use crate::config::SystemConfig;
use crate::core::CoreModel;
use crate::dram::{Dram, DramStats};
use crate::prefetcher::{L2Access, NoPrefetcher, PrefetchQueue, Prefetcher};
use mab_telemetry::Stat;
use mab_workloads::{MemKind, TraceRecord};
use serde::{Deserialize, Serialize};

/// Locally batched telemetry counters, flushed to the global recorder once
/// per run: per-access atomic counter traffic would cost more than the
/// cache model itself.
struct ProbeCounts([u64; Stat::COUNT]);

impl ProbeCounts {
    fn new() -> Self {
        ProbeCounts([0; Stat::COUNT])
    }

    #[inline]
    fn bump(&mut self, stat: Stat) {
        self.add(stat, 1);
    }

    #[inline]
    fn add(&mut self, stat: Stat, n: u64) {
        if mab_telemetry::STATIC_ENABLED {
            self.0[stat as usize] += n;
        }
    }

    fn flush(&mut self) {
        if let Some(rec) = mab_telemetry::recorder() {
            for (i, v) in self.0.iter().enumerate() {
                if *v != 0 {
                    rec.counters().add(Stat::ALL[i], *v);
                }
            }
        }
        self.0 = [0; Stat::COUNT];
    }
}

/// Prefetch outcome counters for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchStats {
    /// Prefetches issued to the memory system.
    pub issued: u64,
    /// Prefetched lines used by a demand access after filling (timely).
    pub timely: u64,
    /// Demand accesses that merged with a still-in-flight prefetch (late).
    pub late: u64,
    /// Prefetched lines evicted unused (wrong).
    pub wrong: u64,
    /// Requests dropped because the prefetch queue was full.
    pub dropped: u64,
}

/// Result of simulating one core's trace slice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Instructions simulated.
    pub instructions: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// L1 counters.
    pub l1: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// Shared-LLC counters (whole system, duplicated per core in reports).
    pub llc: CacheStats,
    /// DRAM counters (whole system).
    pub dram: DramStats,
    /// Prefetch outcome counters.
    pub prefetch: PrefetchStats,
}

impl RunStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// L2 demand accesses (the paper's bandit-step clock for prefetching).
    pub fn l2_demand_accesses(&self) -> u64 {
        self.l2.demand_accesses()
    }
}

/// L2 demand accesses between occupancy samples: a few samples per bandit
/// step (1,000 accesses), cheap enough to leave always on with telemetry.
const OCCUPANCY_SAMPLE_PERIOD: u64 = 512;

/// Every Nth demand access is *armed*: its profiling sites run real timed
/// span guards. The other N−1 accesses only bump plain per-site tallies
/// (see [`SitePending`]) that the next armed entry of each site deposits.
/// This keeps the profiler's cost on the ~60 ns/instruction hot path to a
/// counter increment per site while still timing an unbiased 1-in-N sample
/// of every site.
const ACCESS_SAMPLE_PERIOD: u64 = 256;

/// Unarmed-call tallies, one per call-site-sampled span site (see
/// [`ACCESS_SAMPLE_PERIOD`] and `mab_telemetry::span::enter_sampled`).
/// Counts accumulated here are deposited onto the profile the next time
/// the same site runs armed; a tail of fewer than one sampling period per
/// site can be left undeposited at the end of a run.
#[derive(Default)]
struct SitePending {
    fill: u64,
    l1_train: u64,
    access: u64,
    mshr: u64,
    dram: u64,
    train: u64,
    issue: u64,
    l1_issue: u64,
}

struct CoreCtx {
    core: CoreModel,
    l1: Cache,
    l2: Cache,
    mshr: Mshr,
    prefetcher: Box<dyn Prefetcher + Send>,
    l1_prefetcher: Box<dyn Prefetcher + Send>,
    /// Interned profiler labels for the installed prefetchers, so span
    /// paths read `prefetch_train:bandit` rather than just the category.
    pf_label: u32,
    l1_pf_label: u32,
    /// A real L1 prefetcher was installed (the default [`NoPrefetcher`]
    /// keeps the per-access L1 train call span-free).
    has_l1_pf: bool,
    queue: PrefetchQueue,
    l1_queue: PrefetchQueue,
    pf: PrefetchStats,
    /// Completion times of outstanding demand misses (bounded by the
    /// demand-MSHR count); a full file delays the next miss.
    demand_inflight: std::collections::BinaryHeap<std::cmp::Reverse<u64>>,
    done: bool,
    /// Recycled buffer for MSHR fills completing on this access.
    fill_scratch: Vec<(u64, bool)>,
    /// Recycled buffer for prefetch requests being issued.
    req_scratch: Vec<u64>,
    /// Demand accesses so far, driving the armed/unarmed profiling cadence.
    prof_ctr: u64,
    /// Unarmed call tallies per profiling site.
    pending: SitePending,
}

/// A simulated system: `n` cores with private L1/L2, a shared LLC and a
/// shared DRAM channel.
///
/// # Example
///
/// ```
/// use mab_memsim::{config::SystemConfig, system::System};
/// use mab_workloads::suites;
///
/// let mut sys = System::single_core(SystemConfig::default());
/// let app = suites::app_by_name("cactus").unwrap();
/// let stats = sys.run(&mut app.trace(3), 50_000);
/// assert_eq!(stats.instructions, 50_000);
/// ```
pub struct System {
    config: SystemConfig,
    cores: Vec<CoreCtx>,
    llc: Cache,
    dram: Dram,
    probe: ProbeCounts,
    /// L2 demand accesses since the run started (occupancy sample clock).
    occ_accesses: u64,
    /// L2 demand accesses on the black-box epoch-summary clock (separate
    /// from `occ_accesses`, which only ticks while telemetry records).
    bb_accesses: u64,
    /// Use sequential stepping in [`System::run_multi`]; latched from
    /// [`crate::hotpath`] at construction.
    scalar: bool,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("cores", &self.cores.len())
            .field("config", &self.config)
            .finish()
    }
}

impl System {
    /// Builds a single-core system.
    pub fn single_core(config: SystemConfig) -> Self {
        System::multi_core(config, 1)
    }

    /// Builds an `n`-core system with an LLC scaled to `n × llc_per_core`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn multi_core(config: SystemConfig, n: usize) -> Self {
        assert!(n > 0, "systems need at least one core");
        let mut llc_params = config.llc_per_core;
        llc_params.capacity_bytes *= n as u64;
        let cores = (0..n)
            .map(|_| CoreCtx {
                core: CoreModel::new(config.core),
                l1: Cache::new(config.l1),
                l2: Cache::new(config.l2),
                mshr: Mshr::new(),
                prefetcher: Box::new(NoPrefetcher),
                l1_prefetcher: Box::new(NoPrefetcher),
                pf_label: 0,
                l1_pf_label: 0,
                has_l1_pf: false,
                queue: PrefetchQueue::new(),
                l1_queue: PrefetchQueue::new(),
                pf: PrefetchStats::default(),
                demand_inflight: std::collections::BinaryHeap::new(),
                done: false,
                fill_scratch: Vec::new(),
                req_scratch: Vec::new(),
                prof_ctr: 0,
                pending: SitePending::default(),
            })
            .collect();
        System {
            cores,
            llc: Cache::new(llc_params),
            dram: Dram::new(config.dram_service_cycles(), config.dram_latency),
            config,
            probe: ProbeCounts::new(),
            occ_accesses: 0,
            bb_accesses: 0,
            scalar: crate::hotpath::scalar_kernels(),
        }
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Installs an L2 prefetcher on core `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn set_prefetcher(&mut self, core: usize, prefetcher: Box<dyn Prefetcher + Send>) {
        self.cores[core].pf_label = mab_telemetry::span::intern(prefetcher.name());
        self.cores[core].prefetcher = prefetcher;
    }

    /// Swaps the L2 prefetcher on core `core`, returning the previous one —
    /// the way experiments read back agent state (histograms, selection
    /// histories) after a run.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn replace_prefetcher(
        &mut self,
        core: usize,
        prefetcher: Box<dyn Prefetcher + Send>,
    ) -> Box<dyn Prefetcher + Send> {
        self.cores[core].pf_label = mab_telemetry::span::intern(prefetcher.name());
        std::mem::replace(&mut self.cores[core].prefetcher, prefetcher)
    }

    /// Installs an L1 prefetcher on core `core`: trained on every demand
    /// access, fills into L1 (Fig. 12's multi-level configurations).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn set_l1_prefetcher(&mut self, core: usize, prefetcher: Box<dyn Prefetcher + Send>) {
        self.cores[core].l1_pf_label = mab_telemetry::span::intern(prefetcher.name());
        self.cores[core].has_l1_pf = true;
        self.cores[core].l1_prefetcher = prefetcher;
    }

    /// The configuration the system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Runs a single-core simulation for `instructions` instructions.
    ///
    /// # Panics
    ///
    /// Panics if the system has more than one core (use
    /// [`System::run_multi`]) or the trace ends early.
    pub fn run(
        &mut self,
        trace: &mut dyn Iterator<Item = TraceRecord>,
        instructions: u64,
    ) -> RunStats {
        assert_eq!(self.cores.len(), 1, "use run_multi for multi-core systems");
        let mut traces: Vec<&mut dyn Iterator<Item = TraceRecord>> = vec![trace];
        self.run_multi(&mut traces, instructions).remove(0)
    }

    /// Runs all cores until each has executed `instructions_per_core`
    /// instructions, interleaving cores by simulated time. Returns per-core
    /// statistics.
    ///
    /// In the default chunked kernel mode the cores are stepped in
    /// **pipelined batches** ([`System::drive_pipelined`]); in scalar mode
    /// this is plain per-record sequential stepping. Both orders are
    /// byte-identical by construction — see the driver docs.
    ///
    /// # Panics
    ///
    /// Panics if the number of traces differs from the number of cores or a
    /// trace ends before its core finishes.
    pub fn run_multi(
        &mut self,
        traces: &mut [&mut dyn Iterator<Item = TraceRecord>],
        instructions_per_core: u64,
    ) -> Vec<RunStats> {
        let scalar = self.scalar;
        self.run_multi_with(traces, instructions_per_core, !scalar)
    }

    /// [`System::run_multi`] forced onto the sequential per-record stepping
    /// order, regardless of kernel mode — the reference the pipelined
    /// driver's byte-identity tests and the fig. 14 scheduling bench
    /// compare against.
    ///
    /// # Panics
    ///
    /// As for [`System::run_multi`].
    pub fn run_multi_sequential(
        &mut self,
        traces: &mut [&mut dyn Iterator<Item = TraceRecord>],
        instructions_per_core: u64,
    ) -> Vec<RunStats> {
        self.run_multi_with(traces, instructions_per_core, false)
    }

    fn run_multi_with(
        &mut self,
        traces: &mut [&mut dyn Iterator<Item = TraceRecord>],
        instructions_per_core: u64,
        pipelined: bool,
    ) -> Vec<RunStats> {
        assert_eq!(
            traces.len(),
            self.cores.len(),
            "one trace per core required"
        );
        for ctx in &mut self.cores {
            ctx.done = false;
        }
        let start_cycles: u64 = self.cores.iter().map(|c| c.core.cycles()).sum();
        if pipelined {
            self.drive_pipelined(traces, instructions_per_core);
        } else {
            self.drive_sequential(traces, instructions_per_core);
        }
        let end_cycles: u64 = self.cores.iter().map(|c| c.core.cycles()).sum();
        self.probe.add(Stat::SimCycles, end_cycles - start_cycles);
        self.probe.flush();
        (0..self.cores.len()).map(|i| self.stats(i)).collect()
    }

    /// Sequential reference scheduler: one full scan per record, stepping
    /// the earliest core (ties to the lowest index). This order *defines*
    /// the simulation's output; the pipelined driver reproduces it exactly.
    fn drive_sequential(
        &mut self,
        traces: &mut [&mut dyn Iterator<Item = TraceRecord>],
        instructions_per_core: u64,
    ) {
        loop {
            // Advance the core that is earliest in simulated time.
            let mut next: Option<(usize, u64)> = None;
            for (i, ctx) in self.cores.iter().enumerate() {
                if ctx.done {
                    continue;
                }
                let t = ctx.core.issue_cycle();
                if next.is_none_or(|(_, best)| t < best) {
                    next = Some((i, t));
                }
            }
            let Some((i, t)) = next else { break };
            let record = traces[i].next().expect("trace ended early");
            self.step_core(i, record, t);
            if self.cores[i].core.instructions() >= instructions_per_core {
                self.cores[i].done = true;
            }
        }
    }

    /// Pipelined batch scheduler: pick the winning core once, then keep
    /// stepping it while it would win the sequential scan again, re-scanning
    /// only when the lead changes hands.
    ///
    /// The sequential scan picks the **first** core with the minimum issue
    /// cycle, so core `i` wins exactly when `tᵢ < min(t_j, j < i)` and
    /// `tᵢ ≤ min(t_j, j > i)` over the still-active cores. Stepping core
    /// `i` changes no other core's time, so those two bounds stay valid for
    /// the whole batch and the batch condition reproduces the sequential
    /// pick sequence record for record — shared LLC/DRAM/bandit state is
    /// touched in the identical order and the output is byte-identical
    /// (asserted by the fig. 14 interleave tests). A single-core system
    /// degenerates to one batch for the entire run, which is where the
    /// single-run scheduling overhead goes away.
    fn drive_pipelined(
        &mut self,
        traces: &mut [&mut dyn Iterator<Item = TraceRecord>],
        instructions_per_core: u64,
    ) {
        let mut times: Vec<u64> = self.cores.iter().map(|c| c.core.issue_cycle()).collect();
        loop {
            let mut next: Option<(usize, u64)> = None;
            for (i, t) in times.iter().copied().enumerate() {
                if self.cores[i].done {
                    continue;
                }
                if next.is_none_or(|(_, best)| t < best) {
                    next = Some((i, t));
                }
            }
            let Some((i, mut t)) = next else { break };
            // The batch bounds: earliest active rival below `i` (must stay
            // strictly above tᵢ) and at-or-above `i` (may tie, since the
            // scan prefers the lower index).
            let mut rival_lo = u64::MAX;
            let mut rival_hi = u64::MAX;
            for (j, tj) in times.iter().copied().enumerate() {
                if j == i || self.cores[j].done {
                    continue;
                }
                if j < i {
                    rival_lo = rival_lo.min(tj);
                } else {
                    rival_hi = rival_hi.min(tj);
                }
            }
            loop {
                let record = traces[i].next().expect("trace ended early");
                self.step_core(i, record, t);
                if self.cores[i].core.instructions() >= instructions_per_core {
                    self.cores[i].done = true;
                    break;
                }
                t = self.cores[i].core.issue_cycle();
                if t >= rival_lo || t > rival_hi {
                    break;
                }
            }
            times[i] = self.cores[i].core.issue_cycle();
        }
    }

    /// Statistics snapshot for core `core`.
    pub fn stats(&self, core: usize) -> RunStats {
        let ctx = &self.cores[core];
        RunStats {
            instructions: ctx.core.instructions(),
            cycles: ctx.core.cycles(),
            l1: ctx.l1.stats(),
            l2: ctx.l2.stats(),
            llc: self.llc.stats(),
            dram: self.dram.stats(),
            prefetch: ctx.pf,
        }
    }

    /// Steps core `i` over one record. `t` is the core's current issue
    /// cycle, already computed by the scheduler's scan.
    fn step_core(&mut self, i: usize, record: TraceRecord, t: u64) {
        debug_assert_eq!(t, self.cores[i].core.issue_cycle());
        let latency = match record.mem {
            Some((kind, addr)) => {
                // Cores run independent processes: disjoint physical
                // address spaces (bit 40 per core).
                let line = addr / 64 + ((i as u64) << 40);
                let mem_latency = self.access(i, record.pc, line, kind, t);
                match kind {
                    // Stores retire without waiting for the memory system.
                    MemKind::Store => 1,
                    MemKind::Load => mem_latency,
                }
            }
            None => 1,
        };
        self.cores[i].core.advance(latency);
    }

    /// Performs a demand access for core `i`; returns the load-to-use
    /// latency in cycles.
    fn access(&mut self, i: usize, pc: u64, line: u64, kind: MemKind, t: u64) -> u32 {
        use mab_telemetry::span::{enter_sampled, Category};

        let cfg = &self.config;
        let l1_lat = cfg.l1.latency;
        let l2_lat = l1_lat + cfg.l2.latency;
        let llc_lat = l2_lat + cfg.llc_per_core.latency;

        // Armed accesses run real timed span guards; all other accesses
        // leave only plain per-site counter increments on the hot path.
        // The profiling switch is read once here and handed to every site.
        let profiling = mab_telemetry::profile::enabled();
        let armed = profiling && {
            let ctx = &mut self.cores[i];
            ctx.prof_ctr += 1;
            ctx.prof_ctr.is_multiple_of(ACCESS_SAMPLE_PERIOD)
        };

        // Complete any prefetch fills that have landed by now.
        let ctx = &mut self.cores[i];
        let mut fills = std::mem::take(&mut ctx.fill_scratch);
        ctx.mshr.drain_ready_into(t, &mut fills);
        if !fills.is_empty() {
            let _fill_span = enter_sampled(
                Category::CacheFill,
                0,
                &mut ctx.pending.fill,
                profiling,
                armed,
            );
            for &(filled, fill_l1) in &fills {
                self.probe.bump(Stat::L2Fill);
                mab_telemetry::emit_sim!(CacheFill {
                    level: mab_telemetry::CacheLevel::L2,
                    core: i,
                    line: filled,
                    prefetch: true,
                });
                if let Some(ev) = ctx.l2.fill(filled, true) {
                    if ev.unused_prefetch {
                        ctx.pf.wrong += 1;
                        self.probe.bump(Stat::PrefetchWrong);
                        ctx.prefetcher.on_prefetch_evicted_unused(ev.line);
                    }
                }
                if fill_l1 {
                    self.probe.bump(Stat::L1Fill);
                    ctx.l1.fill(filled, true);
                }
                ctx.prefetcher.on_prefetch_fill(filled, t);
            }
        }
        ctx.fill_scratch = fills;

        let l1_hit = matches!(ctx.l1.demand_lookup(line), LookupResult::Hit { .. });
        if l1_hit {
            self.probe.bump(Stat::L1DemandHit);
        } else {
            self.probe.bump(Stat::L1DemandMiss);
        }
        mab_telemetry::emit_sim!(CacheAccess {
            level: mab_telemetry::CacheLevel::L1,
            core: i,
            line: line,
            hit: l1_hit,
            cycle: t,
        });
        // The L1 prefetcher trains on every demand access.
        let l1_access = L2Access {
            pc,
            line,
            hit: l1_hit,
            cycle: t,
            instructions: ctx.core.instructions(),
            kind,
        };
        if mab_telemetry::STATIC_ENABLED && ctx.has_l1_pf {
            // Only span the L1 train when a real L1 prefetcher is installed:
            // this call sits on the every-access fast path, and the default
            // NoPrefetcher would pay span cost for a no-op.
            let _train_span = enter_sampled(
                Category::PrefetchTrain,
                ctx.l1_pf_label,
                &mut ctx.pending.l1_train,
                profiling,
                armed,
            );
            ctx.l1_prefetcher.train(&l1_access, &mut ctx.l1_queue);
        } else {
            ctx.l1_prefetcher.train(&l1_access, &mut ctx.l1_queue);
        }
        self.issue_l1_prefetches(i, t, profiling, armed);
        if l1_hit {
            return l1_lat;
        }

        // The rest of the access — L2 lookup and everything below it — runs
        // under one profiling span. The L1-hit fast path above stays
        // span-free on purpose: at ~0.3 accesses/instruction even an
        // unarmed-site check would be measurable, and its time shows up
        // as the run span's self-time instead.
        let _access_span = enter_sampled(
            Category::CacheAccess,
            0,
            &mut self.cores[i].pending.access,
            profiling,
            armed,
        );

        // Sampled occupancy tracks (DRAM channel backlog, per-core MSHR
        // fill) for the Perfetto timeline, on the L2-demand-access clock.
        if mab_telemetry::enabled() {
            self.occ_accesses += 1;
            if self.occ_accesses.is_multiple_of(OCCUPANCY_SAMPLE_PERIOD) {
                mab_telemetry::emit!(Occupancy {
                    track: "dram_backlog",
                    id: 0,
                    value: self.dram.backlog(t),
                    cycle: t,
                });
                mab_telemetry::emit!(Occupancy {
                    track: "mshr",
                    id: i,
                    value: self.cores[i].mshr.len() as f64,
                    cycle: t,
                });
            }
        }

        // Black-box epoch summary on the same sampling clock: DRAM backlog
        // at the sample point. Feature-independent, one branch while the
        // flight recorder is off.
        if mab_telemetry::blackbox::is_on() {
            self.bb_accesses += 1;
            if self.bb_accesses.is_multiple_of(OCCUPANCY_SAMPLE_PERIOD) {
                mab_telemetry::blackbox::epoch(
                    "mem",
                    self.bb_accesses / OCCUPANCY_SAMPLE_PERIOD,
                    t,
                    self.dram.backlog(t),
                );
            }
        }

        // L2 demand access: this is where the prefetcher trains.
        let ctx = &mut self.cores[i];
        let l2_result = ctx.l2.demand_lookup(line);
        let hit = matches!(l2_result, LookupResult::Hit { .. });
        if hit {
            self.probe.bump(Stat::L2DemandHit);
        } else {
            self.probe.bump(Stat::L2DemandMiss);
        }
        mab_telemetry::emit_sim!(CacheAccess {
            level: mab_telemetry::CacheLevel::L2,
            core: i,
            line: line,
            hit: hit,
            cycle: t,
        });
        let latency = match l2_result {
            LookupResult::Hit { first_prefetch_use } => {
                if first_prefetch_use {
                    ctx.pf.timely += 1;
                    self.probe.bump(Stat::PrefetchTimely);
                    ctx.prefetcher.on_prefetch_used(line, t);
                }
                l2_lat
            }
            LookupResult::Miss => {
                if let Some(inflight) = ctx.mshr.get(line) {
                    // Covered by a late prefetch: wait for it to land. The
                    // line is still brought in by the prefetcher, so the
                    // fill (consumed immediately by this access) is credited
                    // to prefetching at every level the request targeted.
                    ctx.pf.late += 1;
                    self.probe.bump(Stat::PrefetchLate);
                    ctx.prefetcher.on_prefetch_late(line, t);
                    ctx.mshr.remove(line);
                    self.probe.bump(Stat::L2Fill);
                    self.probe.bump(Stat::L1Fill);
                    if let Some(ev) = ctx.l2.fill_late_prefetch(line) {
                        if ev.unused_prefetch {
                            ctx.pf.wrong += 1;
                            self.probe.bump(Stat::PrefetchWrong);
                            ctx.prefetcher.on_prefetch_evicted_unused(ev.line);
                        }
                    }
                    if inflight.fill_l1 {
                        ctx.l1.fill_late_prefetch(line);
                    } else {
                        ctx.l1.fill(line, false);
                    }
                    let wait = inflight.ready.saturating_sub(t) as u32;
                    l2_lat + wait
                } else {
                    // A true demand miss needs a demand MSHR; when the file
                    // is full the miss waits for the oldest one to retire.
                    let mshr_wait = {
                        let _mshr_span = enter_sampled(
                            Category::Mshr,
                            0,
                            &mut self.cores[i].pending.mshr,
                            profiling,
                            armed,
                        );
                        let ctx = &mut self.cores[i];
                        while ctx
                            .demand_inflight
                            .peek()
                            .is_some_and(|&std::cmp::Reverse(done)| done <= t)
                        {
                            ctx.demand_inflight.pop();
                        }
                        if ctx.demand_inflight.len() >= self.config.demand_mshrs {
                            let std::cmp::Reverse(earliest) = ctx
                                .demand_inflight
                                .pop()
                                .expect("non-empty: len >= cap > 0");
                            earliest.saturating_sub(t) as u32
                        } else {
                            0
                        }
                    };
                    let start = t + mshr_wait as u64;
                    let path = match self.llc.demand_lookup(line) {
                        LookupResult::Hit { .. } => {
                            self.probe.bump(Stat::LlcDemandHit);
                            llc_lat
                        }
                        LookupResult::Miss => {
                            self.probe.bump(Stat::LlcDemandMiss);
                            self.probe.bump(Stat::DramAccess);
                            let dram_lat = {
                                let _dram_span = enter_sampled(
                                    Category::DramQueue,
                                    0,
                                    &mut self.cores[i].pending.dram,
                                    profiling,
                                    armed,
                                );
                                self.dram.access(start + llc_lat as u64)
                            };
                            self.probe.bump(Stat::LlcFill);
                            self.llc.fill(line, false);
                            llc_lat + dram_lat as u32
                        }
                    };
                    let beyond_l2 = mshr_wait + path;
                    mab_telemetry::record_raw!(MissLatency, beyond_l2 as u64);
                    let ctx = &mut self.cores[i];
                    ctx.demand_inflight
                        .push(std::cmp::Reverse(start + path as u64));
                    self.probe.bump(Stat::L2Fill);
                    if let Some(ev) = ctx.l2.fill(line, false) {
                        if ev.unused_prefetch {
                            ctx.pf.wrong += 1;
                            self.probe.bump(Stat::PrefetchWrong);
                            ctx.prefetcher.on_prefetch_evicted_unused(ev.line);
                        }
                    }
                    self.probe.bump(Stat::L1Fill);
                    ctx.l1.fill(line, false);
                    beyond_l2
                }
            }
        };
        if !hit {
            self.cores[i].l1.fill(line, false);
        }

        // Train the prefetcher and issue its requests.
        let ctx = &mut self.cores[i];
        let access = L2Access {
            pc,
            line,
            hit,
            cycle: t,
            instructions: ctx.core.instructions(),
            kind,
        };
        {
            let _train_span = enter_sampled(
                Category::PrefetchTrain,
                ctx.pf_label,
                &mut ctx.pending.train,
                profiling,
                armed,
            );
            ctx.prefetcher.train(&access, &mut ctx.queue);
        }
        self.issue_prefetches(i, t, profiling, armed);
        latency
    }

    /// Issues L1-prefetcher requests: lines already in L2 fill the L1
    /// directly; the rest go to memory and fill L1+L2 on completion.
    fn issue_l1_prefetches(&mut self, i: usize, t: u64, profiling: bool, armed: bool) {
        if self.cores[i].l1_queue.is_empty() {
            return;
        }
        let ctx = &mut self.cores[i];
        let _issue_span = mab_telemetry::span::enter_sampled(
            mab_telemetry::span::Category::PrefetchIssue,
            ctx.l1_pf_label,
            &mut ctx.pending.l1_issue,
            profiling,
            armed,
        );
        let llc_lat =
            self.config.l1.latency + self.config.l2.latency + self.config.llc_per_core.latency;
        let cap = self.config.prefetch_queue;
        let ctx = &mut self.cores[i];
        let mut requests = std::mem::take(&mut ctx.req_scratch);
        ctx.l1_queue.drain_into(&mut requests);
        self.probe
            .add(Stat::PrefetchRequested, requests.len() as u64);
        for &line in &requests {
            if ctx.l1.contains(line) {
                continue;
            }
            if ctx.l2.contains(line) {
                self.probe.bump(Stat::L1Fill);
                ctx.l1.fill(line, true);
                continue;
            }
            if ctx.mshr.get(line).is_some() {
                continue;
            }
            if ctx.mshr.len() >= cap {
                ctx.pf.dropped += 1;
                self.probe.bump(Stat::PrefetchDropped);
                continue;
            }
            let fill_latency = if self.llc.contains(line) {
                llc_lat as u64
            } else {
                self.probe.bump(Stat::DramAccess);
                let dram_lat = self.dram.access(t + llc_lat as u64);
                self.probe.bump(Stat::LlcFill);
                self.llc.fill(line, false);
                llc_lat as u64 + dram_lat
            };
            ctx.mshr.insert(line, t + fill_latency, true);
            ctx.pf.issued += 1;
            self.probe.bump(Stat::PrefetchIssued);
            mab_telemetry::emit_sim!(PrefetchIssued {
                core: i,
                line: line,
                cycle: t,
            });
        }
        ctx.req_scratch = requests;
    }

    fn issue_prefetches(&mut self, i: usize, t: u64, profiling: bool, armed: bool) {
        if self.cores[i].queue.is_empty() {
            return;
        }
        let ctx = &mut self.cores[i];
        let _issue_span = mab_telemetry::span::enter_sampled(
            mab_telemetry::span::Category::PrefetchIssue,
            ctx.pf_label,
            &mut ctx.pending.issue,
            profiling,
            armed,
        );
        let llc_lat =
            self.config.l1.latency + self.config.l2.latency + self.config.llc_per_core.latency;
        let cap = self.config.prefetch_queue;
        let ctx = &mut self.cores[i];
        let mut requests = std::mem::take(&mut ctx.req_scratch);
        ctx.queue.drain_into(&mut requests);
        self.probe
            .add(Stat::PrefetchRequested, requests.len() as u64);
        for &line in &requests {
            if ctx.l2.contains(line) || ctx.mshr.get(line).is_some() {
                continue; // redundant
            }
            if ctx.mshr.len() >= cap {
                ctx.pf.dropped += 1;
                self.probe.bump(Stat::PrefetchDropped);
                continue;
            }
            let fill_latency = if self.llc.contains(line) {
                llc_lat as u64
            } else {
                // Prefetch also fills the LLC and consumes DRAM bandwidth.
                self.probe.bump(Stat::DramAccess);
                let dram_lat = self.dram.access(t + llc_lat as u64);
                self.probe.bump(Stat::LlcFill);
                self.llc.fill(line, false);
                llc_lat as u64 + dram_lat
            };
            ctx.mshr.insert(line, t + fill_latency, false);
            ctx.pf.issued += 1;
            self.probe.bump(Stat::PrefetchIssued);
            mab_telemetry::emit_sim!(PrefetchIssued {
                core: i,
                line: line,
                cycle: t,
            });
        }
        ctx.req_scratch = requests;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mab_workloads::suites;

    /// A degree-4 next-line prefetcher for testing the hook plumbing.
    struct TestNextLine;

    impl Prefetcher for TestNextLine {
        fn name(&self) -> &str {
            "test-nl"
        }
        fn train(&mut self, access: &L2Access, queue: &mut PrefetchQueue) {
            for d in 1..=4 {
                queue.push(access.line + d);
            }
        }
    }

    /// A word-granular streaming trace: one load every 3rd instruction,
    /// eight consecutive words per cache line.
    fn stream_trace() -> impl Iterator<Item = TraceRecord> {
        (0u64..).map(|i| {
            if i % 3 == 0 {
                let access = i / 3;
                TraceRecord::load(0x400, (access / 8) * 64 + (access % 8) * 8)
            } else {
                TraceRecord::alu(0x500 + (i % 8) * 4)
            }
        })
    }

    #[test]
    fn runs_the_requested_instruction_count() {
        let mut sys = System::single_core(SystemConfig::default());
        let stats = sys.run(&mut stream_trace(), 10_000);
        assert_eq!(stats.instructions, 10_000);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn next_line_prefetcher_improves_streaming_ipc() {
        let base = {
            let mut sys = System::single_core(SystemConfig::default());
            sys.run(&mut stream_trace(), 60_000).ipc()
        };
        let with_pf = {
            let mut sys = System::single_core(SystemConfig::default());
            sys.set_prefetcher(0, Box::new(TestNextLine));
            sys.run(&mut stream_trace(), 60_000).ipc()
        };
        assert!(
            with_pf > base * 1.05,
            "prefetching should help streaming: {base} -> {with_pf}"
        );
    }

    #[test]
    fn prefetches_are_classified() {
        let mut sys = System::single_core(SystemConfig::default());
        sys.set_prefetcher(0, Box::new(TestNextLine));
        let stats = sys.run(&mut stream_trace(), 60_000);
        assert!(stats.prefetch.issued > 100);
        assert!(
            stats.prefetch.timely + stats.prefetch.late > 0,
            "stream prefetches are useful: {:?}",
            stats.prefetch
        );
    }

    #[test]
    fn small_footprint_stays_cache_resident() {
        // 16 lines fit in L1: after warmup, everything hits.
        let mut trace = (0u64..).map(|i| TraceRecord::load(0x400, (i % 16) * 64));
        let mut sys = System::single_core(SystemConfig::default());
        let stats = sys.run(&mut trace, 20_000);
        assert!(stats.l1.demand_hits > 19_000, "{:?}", stats.l1);
        assert!(stats.ipc() > 2.0, "ipc {}", stats.ipc());
    }

    #[test]
    fn huge_random_footprint_misses_llc() {
        let app = suites::app_by_name("canneal").unwrap();
        let mut sys = System::single_core(SystemConfig::default());
        let stats = sys.run(&mut app.trace(1), 100_000);
        assert!(stats.llc.demand_misses > 1_000, "{:?}", stats.llc);
    }

    #[test]
    fn lower_bandwidth_lowers_ipc() {
        let run = |mtps: u64| {
            let app = suites::app_by_name("lbm").unwrap();
            let mut sys = System::single_core(SystemConfig::default().with_dram_mtps(mtps));
            sys.run(&mut app.trace(1), 100_000).ipc()
        };
        let slow = run(150);
        let fast = run(9600);
        assert!(fast > slow * 1.2, "slow {slow} fast {fast}");
    }

    #[test]
    fn four_core_run_returns_per_core_stats() {
        let cfg = SystemConfig::default();
        let mut sys = System::multi_core(cfg, 4);
        let app = suites::app_by_name("milc").unwrap();
        let mut t0 = app.trace(1);
        let mut t1 = app.trace(2);
        let mut t2 = app.trace(3);
        let mut t3 = app.trace(4);
        let mut traces: Vec<&mut dyn Iterator<Item = TraceRecord>> =
            vec![&mut t0, &mut t1, &mut t2, &mut t3];
        let stats = sys.run_multi(&mut traces, 20_000);
        assert_eq!(stats.len(), 4);
        for s in &stats {
            assert_eq!(s.instructions, 20_000);
            assert!(s.ipc() > 0.0);
        }
    }

    #[test]
    fn shared_dram_creates_contention() {
        let app = suites::app_by_name("lbm").unwrap();
        let single_ipc = {
            let mut sys = System::single_core(SystemConfig::default());
            sys.run(&mut app.trace(1), 50_000).ipc()
        };
        let four_ipc = {
            let mut sys = System::multi_core(SystemConfig::default(), 4);
            let mut ts: Vec<_> = (0..4).map(|i| app.trace(i as u64 + 1)).collect();
            let mut traces: Vec<&mut dyn Iterator<Item = TraceRecord>> = ts
                .iter_mut()
                .map(|t| t as &mut dyn Iterator<Item = TraceRecord>)
                .collect();
            let stats = sys.run_multi(&mut traces, 50_000);
            stats[0].ipc()
        };
        assert!(
            four_ipc < single_ipc,
            "sharing bandwidth hurts: {single_ipc} vs {four_ipc}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = System::multi_core(SystemConfig::default(), 0);
    }
}
