//! Interval-style out-of-order core timing model.
//!
//! Instructions are processed in program order. Each instruction `i` may
//! issue no earlier than (a) the fetch stream reaches it (fetch width) and
//! (b) instruction `i − ROB` has retired (finite reorder buffer). Its
//! completion is its issue cycle plus its execution latency, and retirement
//! is in order at the commit width. Loads therefore overlap naturally within
//! the ROB window — the model captures memory-level parallelism, the way a
//! pointer chase serializes, and how commit bandwidth caps IPC, which is all
//! the prefetching study needs from the core.

use crate::config::CoreParams;

/// The per-core timing state.
///
/// # Example
///
/// ```
/// use mab_memsim::core::CoreModel;
/// use mab_memsim::config::CoreParams;
///
/// let mut core = CoreModel::new(CoreParams {
///     fetch_width: 4, commit_width: 4, rob_size: 8, freq_mhz: 4000,
/// });
/// for _ in 0..100 {
///     let _issue = core.issue_cycle();
///     core.advance(1);
/// }
/// // 100 single-cycle instructions at width 4 take about 25 cycles.
/// assert!(core.cycles() >= 25 && core.cycles() < 35);
/// ```
#[derive(Debug, Clone)]
pub struct CoreModel {
    fetch_incr: f64,
    commit_incr: f64,
    /// Retire cycles of the last `rob_size` instructions (ring buffer).
    ring: Vec<f64>,
    pos: usize,
    fetch_ptr: f64,
    last_retire: f64,
    instructions: u64,
}

impl CoreModel {
    /// Creates a core model from pipeline parameters.
    pub fn new(params: CoreParams) -> Self {
        CoreModel {
            fetch_incr: 1.0 / params.fetch_width.max(1) as f64,
            commit_incr: 1.0 / params.commit_width.max(1) as f64,
            ring: vec![0.0; params.rob_size.max(1) as usize],
            pos: 0,
            fetch_ptr: 0.0,
            last_retire: 0.0,
            instructions: 0,
        }
    }

    /// Earliest cycle at which the next instruction can issue: the fetch
    /// stream position, bounded by ROB availability.
    pub fn issue_cycle(&self) -> u64 {
        self.fetch_ptr.max(self.ring[self.pos]) as u64
    }

    /// Consumes the next instruction with execution latency `latency`
    /// (1 for ALU/branch/store, the memory latency for loads).
    pub fn advance(&mut self, latency: u32) {
        let issue = self.fetch_ptr.max(self.ring[self.pos]);
        let complete = issue + latency as f64;
        let retire = complete.max(self.last_retire + self.commit_incr);
        self.ring[self.pos] = retire;
        self.pos = (self.pos + 1) % self.ring.len();
        self.last_retire = retire;
        self.fetch_ptr = issue + self.fetch_incr;
        self.instructions += 1;
    }

    /// Cycles elapsed so far (retire time of the youngest instruction).
    pub fn cycles(&self) -> u64 {
        self.last_retire.ceil() as u64
    }

    /// Instructions processed.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// IPC so far.
    pub fn ipc(&self) -> f64 {
        if self.last_retire == 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.last_retire
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(rob: u32) -> CoreParams {
        CoreParams {
            fetch_width: 4,
            commit_width: 4,
            rob_size: rob,
            freq_mhz: 4000,
        }
    }

    #[test]
    fn single_cycle_instructions_hit_commit_width() {
        let mut core = CoreModel::new(params(64));
        for _ in 0..10_000 {
            core.advance(1);
        }
        let ipc = core.ipc();
        assert!((ipc - 4.0).abs() < 0.1, "ipc {ipc}");
    }

    #[test]
    fn independent_long_loads_overlap_within_rob() {
        // 100-cycle loads, ROB 64: ~64 in flight, so throughput ≈ 64/100.
        let mut core = CoreModel::new(params(64));
        for _ in 0..10_000 {
            core.advance(100);
        }
        let ipc = core.ipc();
        assert!((ipc - 0.64).abs() < 0.05, "ipc {ipc}");
    }

    #[test]
    fn smaller_rob_means_less_mlp() {
        let run = |rob: u32| {
            let mut core = CoreModel::new(params(rob));
            for _ in 0..5_000 {
                core.advance(100);
            }
            core.ipc()
        };
        assert!(run(16) < run(64));
        assert!(run(64) < run(256));
    }

    #[test]
    fn mixed_latencies_between_bounds() {
        let mut core = CoreModel::new(params(256));
        for i in 0..20_000u32 {
            core.advance(if i % 10 == 0 { 200 } else { 1 });
        }
        let ipc = core.ipc();
        assert!(ipc > 0.5 && ipc < 4.0, "ipc {ipc}");
    }

    #[test]
    fn issue_cycle_is_monotonic() {
        let mut core = CoreModel::new(params(8));
        let mut last = 0;
        for i in 0..1000u32 {
            let issue = core.issue_cycle();
            assert!(issue >= last);
            last = issue;
            core.advance(1 + (i % 7));
        }
    }

    #[test]
    fn instruction_count_tracks_advances() {
        let mut core = CoreModel::new(params(8));
        for _ in 0..123 {
            core.advance(1);
        }
        assert_eq!(core.instructions(), 123);
    }
}
