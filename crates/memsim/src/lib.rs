//! # `mab-memsim` — trace-driven memory-hierarchy and core timing simulator
//!
//! A ChampSim-class substrate for the paper's prefetching use case:
//!
//! - [`cache`] — set-associative caches with LRU replacement, MSHR merging
//!   and per-line prefetch bookkeeping (timely/late/wrong classification,
//!   paper Fig. 9),
//! - [`dram`] — a bandwidth-constrained DRAM model whose throughput is set
//!   in megatransfers per second, enabling the Fig. 10 bandwidth sweep,
//! - [`core`] — an interval-style out-of-order core timing model (ROB
//!   window, fetch/commit width) that turns load latencies into IPC,
//! - [`system`] — single-core and multi-core wiring with a [`Prefetcher`]
//!   hook at the L2 (trained on L1 misses, filling into L2 and LLC, §6.1),
//! - [`config`] — the paper's Table 4 parameters plus the alternative
//!   hierarchy of Fig. 11.
//!
//! # Example
//!
//! ```
//! use mab_memsim::{config::SystemConfig, system::System};
//! use mab_workloads::suites;
//!
//! let app = suites::app_by_name("libquantum").unwrap();
//! let mut system = System::single_core(SystemConfig::default());
//! let stats = system.run(&mut app.trace(1), 100_000);
//! assert!(stats.ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod core;
pub mod dram;
pub mod hotpath;
pub mod prefetcher;
pub mod system;

pub use config::{CacheParams, CoreParams, SystemConfig};
pub use prefetcher::{L2Access, NoPrefetcher, PrefetchQueue, Prefetcher};
pub use system::{RunStats, System};
