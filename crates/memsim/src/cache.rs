//! Set-associative cache with LRU replacement and prefetch bookkeeping.

use crate::config::CacheParams;
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap};

/// Result of a demand lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// Line present; `first_prefetch_use` is true if this is the first
    /// demand touch of a prefetched line (a *timely* prefetch).
    Hit {
        /// True exactly once per usefully prefetched line.
        first_prefetch_use: bool,
    },
    /// Line absent.
    Miss,
}

/// Per-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand lookups that hit.
    pub demand_hits: u64,
    /// Demand lookups that missed.
    pub demand_misses: u64,
    /// Lines filled on behalf of the prefetcher.
    pub prefetch_fills: u64,
    /// Prefetched lines touched by a demand access (timely prefetches).
    pub prefetch_used: u64,
    /// Prefetched lines evicted without ever being used (wrong prefetches).
    pub prefetch_evicted_unused: u64,
}

impl CacheStats {
    /// Demand accesses observed (hits + misses).
    pub fn demand_accesses(&self) -> u64 {
        self.demand_hits + self.demand_misses
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct CacheLine {
    tag: u64,
    valid: bool,
    prefetched: bool,
    lru: u64,
}

/// A set-associative, write-allocate cache with true-LRU replacement.
///
/// Addresses are cache-line indices (byte address / 64). The cache tracks a
/// `prefetched` bit per line so the system can classify prefetches as
/// timely (used by a demand access) or wrong (evicted unused), as in the
/// paper's Fig. 9.
///
/// # Example
///
/// ```
/// use mab_memsim::cache::{Cache, LookupResult};
/// use mab_memsim::config::CacheParams;
///
/// let mut cache = Cache::new(CacheParams { capacity_bytes: 4096, ways: 4, latency: 4 });
/// assert_eq!(cache.demand_lookup(7), LookupResult::Miss);
/// cache.fill(7, false);
/// assert!(matches!(cache.demand_lookup(7), LookupResult::Hit { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: u64,
    ways: usize,
    latency: u32,
    lines: Vec<CacheLine>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from its parameters.
    pub fn new(params: CacheParams) -> Self {
        let sets = params.sets();
        let ways = params.ways as usize;
        Cache {
            sets,
            ways,
            latency: params.latency,
            lines: vec![CacheLine::default(); (sets as usize) * ways],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Access latency of this level.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the counters (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line % self.sets) as usize;
        set * self.ways..(set + 1) * self.ways
    }

    /// Demand lookup: updates LRU and hit/miss statistics, and consumes the
    /// prefetched bit on first use.
    pub fn demand_lookup(&mut self, line: u64) -> LookupResult {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(line);
        for way in &mut self.lines[range] {
            if way.valid && way.tag == line {
                way.lru = clock;
                let first_use = way.prefetched;
                if first_use {
                    way.prefetched = false;
                    self.stats.prefetch_used += 1;
                }
                self.stats.demand_hits += 1;
                return LookupResult::Hit {
                    first_prefetch_use: first_use,
                };
            }
        }
        self.stats.demand_misses += 1;
        LookupResult::Miss
    }

    /// Non-mutating presence check (used to filter redundant prefetches).
    pub fn contains(&self, line: u64) -> bool {
        let set = (line % self.sets) as usize;
        self.lines[set * self.ways..(set + 1) * self.ways]
            .iter()
            .any(|w| w.valid && w.tag == line)
    }

    /// Fills `line`, evicting the LRU way if needed. Returns the eviction,
    /// if any. `prefetched` marks prefetcher-initiated fills.
    pub fn fill(&mut self, line: u64, prefetched: bool) -> Option<Evicted> {
        self.clock += 1;
        let clock = self.clock;
        if prefetched {
            self.stats.prefetch_fills += 1;
        }
        let range = self.set_range(line);
        // Already present (e.g. demand raced a prefetch): refresh only.
        if let Some(way) = self.lines[range.clone()]
            .iter_mut()
            .find(|w| w.valid && w.tag == line)
        {
            way.lru = clock;
            return None;
        }
        let set_lines = &mut self.lines[range];
        let victim = set_lines
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru } else { 0 })
            .expect("caches have at least one way");
        let evicted = if victim.valid {
            if victim.prefetched {
                self.stats.prefetch_evicted_unused += 1;
            }
            Some(Evicted {
                line: victim.tag,
                unused_prefetch: victim.prefetched,
            })
        } else {
            None
        };
        *victim = CacheLine {
            tag: line,
            valid: true,
            prefetched,
            lru: clock,
        };
        evicted
    }

    /// Fills `line` for a **late** prefetch: the demand access that is
    /// currently waiting on the in-flight prefetch consumes the line the
    /// moment it lands, so this counts both the prefetch fill and its use
    /// and leaves the line's prefetched bit clear (a later eviction must
    /// not classify it as a wrong prefetch).
    pub fn fill_late_prefetch(&mut self, line: u64) -> Option<Evicted> {
        let evicted = self.fill(line, true);
        let range = self.set_range(line);
        if let Some(way) = self.lines[range]
            .iter_mut()
            .find(|w| w.valid && w.tag == line)
        {
            if way.prefetched {
                way.prefetched = false;
                self.stats.prefetch_used += 1;
            }
        }
        evicted
    }
}

/// A line evicted by [`Cache::fill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted line index.
    pub line: u64,
    /// True if the line was prefetched and never used (a *wrong* prefetch).
    pub unused_prefetch: bool,
}

/// An in-flight prefetch fill tracked by the [`Mshr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inflight {
    /// Cycle at which the fill completes.
    pub ready: u64,
    /// Whether the fill also targets the L1 (L1-prefetcher initiated).
    pub fill_l1: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    ready: u64,
    line: u64,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by readiness.
        other
            .ready
            .cmp(&self.ready)
            .then(other.line.cmp(&self.line))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Miss-status holding registers for in-flight *prefetch* fills.
///
/// Demand misses in this model fill immediately (their latency is charged to
/// the load), but prefetches stay "in flight" until their completion cycle so
/// that a demand access arriving earlier can be classified as covered by a
/// **late** prefetch (paper Fig. 9).
#[derive(Debug, Clone, Default)]
pub struct Mshr {
    inflight: HashMap<u64, Inflight>,
    order: BinaryHeap<HeapEntry>,
}

impl Mshr {
    /// Creates an empty MSHR file.
    pub fn new() -> Self {
        Mshr::default()
    }

    /// Number of in-flight prefetches.
    pub fn len(&self) -> usize {
        self.inflight.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }

    /// Looks up an in-flight prefetch for `line`.
    pub fn get(&self, line: u64) -> Option<Inflight> {
        self.inflight.get(&line).copied()
    }

    /// Registers a prefetch for `line` completing at `ready`; `fill_l1`
    /// additionally fills the L1 on completion (L1-prefetcher requests).
    /// Returns false (and does nothing) if the line is already in flight.
    pub fn insert(&mut self, line: u64, ready: u64, fill_l1: bool) -> bool {
        if self.inflight.contains_key(&line) {
            return false;
        }
        self.inflight.insert(line, Inflight { ready, fill_l1 });
        self.order.push(HeapEntry { ready, line });
        true
    }

    /// Removes `line` (e.g. a demand miss arrived and took over the fill).
    pub fn remove(&mut self, line: u64) {
        self.inflight.remove(&line);
        // The heap entry becomes stale and is skipped on drain.
    }

    /// Pops every prefetch that has completed by `now`, returning
    /// `(line, fill_l1)` pairs, oldest first.
    pub fn drain_ready(&mut self, now: u64) -> Vec<(u64, bool)> {
        let mut done = Vec::new();
        while let Some(&HeapEntry { ready, line }) = self.order.peek() {
            if ready > now {
                break;
            }
            self.order.pop();
            // Skip stale entries whose MSHR was removed or re-posted.
            if let Some(inflight) = self.inflight.get(&line) {
                if inflight.ready == ready {
                    let fill_l1 = inflight.fill_l1;
                    self.inflight.remove(&line);
                    done.push((line, fill_l1));
                }
            }
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 2 sets x 2 ways.
        Cache::new(CacheParams {
            capacity_bytes: 4 * 64,
            ways: 2,
            latency: 4,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache();
        assert_eq!(c.demand_lookup(10), LookupResult::Miss);
        c.fill(10, false);
        assert_eq!(
            c.demand_lookup(10),
            LookupResult::Hit {
                first_prefetch_use: false
            }
        );
        assert_eq!(c.stats().demand_hits, 1);
        assert_eq!(c.stats().demand_misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_cache();
        // Lines 0, 2, 4 map to set 0 (2 sets).
        c.fill(0, false);
        c.fill(2, false);
        c.demand_lookup(0); // refresh line 0
        let evicted = c.fill(4, false); // must evict line 2
        assert_eq!(
            evicted,
            Some(Evicted {
                line: 2,
                unused_prefetch: false
            })
        );
        assert!(c.contains(0));
        assert!(c.contains(4));
    }

    #[test]
    fn prefetch_bit_counts_first_use_only() {
        let mut c = small_cache();
        c.fill(6, true);
        assert_eq!(
            c.demand_lookup(6),
            LookupResult::Hit {
                first_prefetch_use: true
            }
        );
        assert_eq!(
            c.demand_lookup(6),
            LookupResult::Hit {
                first_prefetch_use: false
            }
        );
        assert_eq!(c.stats().prefetch_used, 1);
        assert_eq!(c.stats().prefetch_fills, 1);
    }

    #[test]
    fn late_prefetch_fill_counts_fill_and_use() {
        let mut c = small_cache();
        c.fill_late_prefetch(6);
        assert_eq!(c.stats().prefetch_fills, 1);
        assert_eq!(c.stats().prefetch_used, 1);
        // The bit was consumed: the next demand hit is an ordinary hit and
        // an eviction would not count as a wrong prefetch.
        assert_eq!(
            c.demand_lookup(6),
            LookupResult::Hit {
                first_prefetch_use: false
            }
        );
        assert_eq!(c.stats().prefetch_used, 1);
    }

    #[test]
    fn unused_prefetch_eviction_counts_as_wrong() {
        let mut c = small_cache();
        c.fill(0, true);
        c.fill(2, false);
        c.fill(4, false); // evicts line 0 (prefetched, unused)
        assert_eq!(c.stats().prefetch_evicted_unused, 1);
    }

    #[test]
    fn refilling_present_line_does_not_duplicate() {
        let mut c = small_cache();
        c.fill(8, false);
        assert_eq!(c.fill(8, false), None);
        assert!(c.contains(8));
    }

    #[test]
    fn mshr_tracks_and_drains_in_order() {
        let mut m = Mshr::new();
        assert!(m.insert(1, 100, false));
        assert!(m.insert(2, 50, true));
        assert!(!m.insert(1, 70, false), "duplicate rejected");
        assert_eq!(m.len(), 2);
        assert_eq!(m.drain_ready(49), Vec::<(u64, bool)>::new());
        assert_eq!(m.drain_ready(100), vec![(2, true), (1, false)]);
        assert!(m.is_empty());
    }

    #[test]
    fn mshr_remove_cancels_fill() {
        let mut m = Mshr::new();
        m.insert(5, 10, false);
        m.remove(5);
        assert_eq!(m.drain_ready(1000), Vec::<(u64, bool)>::new());
    }

    #[test]
    fn mshr_get_reports_ready_cycle() {
        let mut m = Mshr::new();
        m.insert(3, 42, true);
        assert_eq!(
            m.get(3),
            Some(Inflight {
                ready: 42,
                fill_l1: true
            })
        );
        assert_eq!(m.get(4), None);
    }
}
