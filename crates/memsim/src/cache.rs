//! Set-associative cache with LRU replacement and prefetch bookkeeping.
//!
//! Both structures here sit on the simulator's per-access hot path, so they
//! are laid out for scan speed rather than convenience:
//!
//! - [`Cache`] keeps tags, LRU stamps and status flags in parallel arrays
//!   (structure-of-arrays) so a set probe touches one contiguous run of
//!   tags — one cache line for an 8-way set — instead of striding over
//!   wider per-line structs. Set indexing uses a mask when the set count is
//!   a power of two (the common case; the Fig. 11 alternate LLC with 1536
//!   sets falls back to a modulo).
//! - [`Mshr`] indexes in-flight lines with an open-addressed table
//!   (multiplicative hashing, tombstone deletion) instead of a `HashMap`'s
//!   SipHash, and keeps the earliest completion cycle cached so the
//!   per-access drain is a single compare when nothing has landed.

use crate::config::CacheParams;
use crate::hotpath;
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// Lane count for the chunked (SIMD-shaped) way scans. Eight `u64` tags are
/// one 64-byte chunk — exactly the L1/L2 associativity, half the LLC's — so
/// the per-chunk compare/min loops below run over fixed-size arrays the
/// autovectorizer can turn into vector ops.
const WAY_CHUNK: usize = 8;

/// Result of a demand lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// Line present; `first_prefetch_use` is true if this is the first
    /// demand touch of a prefetched line (a *timely* prefetch).
    Hit {
        /// True exactly once per usefully prefetched line.
        first_prefetch_use: bool,
    },
    /// Line absent.
    Miss,
}

/// Per-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand lookups that hit.
    pub demand_hits: u64,
    /// Demand lookups that missed.
    pub demand_misses: u64,
    /// Lines filled on behalf of the prefetcher.
    pub prefetch_fills: u64,
    /// Prefetched lines touched by a demand access (timely prefetches).
    pub prefetch_used: u64,
    /// Prefetched lines evicted without ever being used (wrong prefetches).
    pub prefetch_evicted_unused: u64,
}

impl CacheStats {
    /// Demand accesses observed (hits + misses).
    pub fn demand_accesses(&self) -> u64 {
        self.demand_hits + self.demand_misses
    }
}

/// Per-way status bits, packed so the flag array stays one byte per way.
const FLAG_VALID: u8 = 1 << 0;
const FLAG_PREFETCHED: u8 = 1 << 1;

/// A set-associative, write-allocate cache with true-LRU replacement.
///
/// Addresses are cache-line indices (byte address / 64). The cache tracks a
/// `prefetched` bit per line so the system can classify prefetches as
/// timely (used by a demand access) or wrong (evicted unused), as in the
/// paper's Fig. 9.
///
/// # Example
///
/// ```
/// use mab_memsim::cache::{Cache, LookupResult};
/// use mab_memsim::config::CacheParams;
///
/// let mut cache = Cache::new(CacheParams { capacity_bytes: 4096, ways: 4, latency: 4 });
/// assert_eq!(cache.demand_lookup(7), LookupResult::Miss);
/// cache.fill(7, false);
/// assert!(matches!(cache.demand_lookup(7), LookupResult::Hit { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: u64,
    /// `sets - 1` when the set count is a power of two.
    set_mask: u64,
    pow2_sets: bool,
    ways: usize,
    latency: u32,
    /// Way tags, contiguous per set. Invalid ways carry `u64::MAX` so the
    /// tag scan rarely false-matches, but a match is always confirmed
    /// against the valid flag.
    tags: Vec<u64>,
    /// Per-way [`FLAG_VALID`] / [`FLAG_PREFETCHED`] bits.
    flags: Vec<u8>,
    /// Per-way last-touch stamps (always ≥ 1 for valid ways: the clock is
    /// incremented before any fill or lookup touches a way).
    lru: Vec<u64>,
    clock: u64,
    stats: CacheStats,
    /// Use the scalar reference kernels instead of the chunked ones.
    /// Latched from [`hotpath::scalar_kernels`] at construction.
    scalar: bool,
}

impl Cache {
    /// Builds a cache from its parameters.
    pub fn new(params: CacheParams) -> Self {
        let sets = params.sets();
        let ways = params.ways as usize;
        let lines = (sets as usize) * ways;
        Cache {
            sets,
            set_mask: sets.wrapping_sub(1),
            pow2_sets: sets.is_power_of_two(),
            ways,
            latency: params.latency,
            tags: vec![u64::MAX; lines],
            flags: vec![0; lines],
            lru: vec![0; lines],
            clock: 0,
            stats: CacheStats::default(),
            scalar: hotpath::scalar_kernels(),
        }
    }

    /// Access latency of this level.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the counters (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_base(&self, line: u64) -> usize {
        let set = if self.pow2_sets {
            line & self.set_mask
        } else {
            line % self.sets
        };
        (set as usize) * self.ways
    }

    /// Index of the way holding `line`, if present and valid.
    #[inline]
    fn find(&self, line: u64) -> Option<usize> {
        if self.scalar {
            self.find_scalar(line)
        } else {
            self.find_chunked(line)
        }
    }

    /// Scalar reference tag scan: first tag match, confirmed valid. Kept as
    /// the differential baseline for [`Cache::find_chunked`].
    #[inline]
    fn find_scalar(&self, line: u64) -> Option<usize> {
        let base = self.set_base(line);
        self.tags[base..base + self.ways]
            .iter()
            .position(|&tag| tag == line)
            .map(|way| base + way)
            .filter(|&idx| self.flags[idx] & FLAG_VALID != 0)
    }

    /// Chunked whole-set tag compare: every [`WAY_CHUNK`] tags are compared
    /// as one branchless masked chunk, and the first set bit of the mask is
    /// the first matching way — the same way the scalar early-exit scan
    /// lands on, because a valid line appears in at most one way and
    /// invalid ways carry the `u64::MAX` sentinel no real line equals.
    #[inline]
    fn find_chunked(&self, line: u64) -> Option<usize> {
        let base = self.set_base(line);
        let tags = &self.tags[base..base + self.ways];
        let mut chunks = tags.chunks_exact(WAY_CHUNK);
        let mut offset = 0;
        for chunk in &mut chunks {
            let chunk: &[u64; WAY_CHUNK] = chunk.try_into().expect("exact chunk");
            let mut mask = 0u32;
            for (lane, &tag) in chunk.iter().enumerate() {
                mask |= u32::from(tag == line) << lane;
            }
            if mask != 0 {
                let idx = base + offset + mask.trailing_zeros() as usize;
                return Some(idx).filter(|&i| self.flags[i] & FLAG_VALID != 0);
            }
            offset += WAY_CHUNK;
        }
        // Sub-chunk associativities (test-sized caches) finish scalar.
        chunks
            .remainder()
            .iter()
            .position(|&tag| tag == line)
            .map(|way| base + offset + way)
            .filter(|&idx| self.flags[idx] & FLAG_VALID != 0)
    }

    /// Demand lookup: updates LRU and hit/miss statistics, and consumes the
    /// prefetched bit on first use.
    pub fn demand_lookup(&mut self, line: u64) -> LookupResult {
        self.clock += 1;
        if let Some(idx) = self.find(line) {
            self.lru[idx] = self.clock;
            let first_use = self.flags[idx] & FLAG_PREFETCHED != 0;
            if first_use {
                self.flags[idx] &= !FLAG_PREFETCHED;
                self.stats.prefetch_used += 1;
            }
            self.stats.demand_hits += 1;
            return LookupResult::Hit {
                first_prefetch_use: first_use,
            };
        }
        self.stats.demand_misses += 1;
        LookupResult::Miss
    }

    /// Non-mutating presence check (used to filter redundant prefetches).
    pub fn contains(&self, line: u64) -> bool {
        self.find(line).is_some()
    }

    /// Fills `line`, evicting the LRU way if needed. Returns the eviction,
    /// if any. `prefetched` marks prefetcher-initiated fills.
    pub fn fill(&mut self, line: u64, prefetched: bool) -> Option<Evicted> {
        self.fill_inner(line, prefetched).0
    }

    /// Fill plus the index of the way that now holds `line`.
    fn fill_inner(&mut self, line: u64, prefetched: bool) -> (Option<Evicted>, usize) {
        // The chunked tag compare relies on `u64::MAX` marking exactly the
        // invalid ways; real lines (addr/64, plus a core id in bits 40+)
        // can never reach the sentinel.
        debug_assert_ne!(
            line,
            u64::MAX,
            "line index collides with the invalid-way sentinel"
        );
        self.clock += 1;
        let clock = self.clock;
        if prefetched {
            self.stats.prefetch_fills += 1;
        }
        let base = self.set_base(line);
        let victim = if self.scalar {
            match self.fill_scan_scalar(base, line) {
                Ok(idx) => {
                    // Already present (e.g. demand raced a prefetch):
                    // refresh only.
                    self.lru[idx] = clock;
                    return (None, idx);
                }
                Err(victim) => victim,
            }
        } else {
            match self.fill_scan_chunked(base, line) {
                Ok(idx) => {
                    self.lru[idx] = clock;
                    return (None, idx);
                }
                Err(victim) => victim,
            }
        };
        let evicted = if self.flags[victim] & FLAG_VALID != 0 {
            let unused_prefetch = self.flags[victim] & FLAG_PREFETCHED != 0;
            if unused_prefetch {
                self.stats.prefetch_evicted_unused += 1;
            }
            Some(Evicted {
                line: self.tags[victim],
                unused_prefetch,
            })
        } else {
            None
        };
        self.tags[victim] = line;
        self.flags[victim] = FLAG_VALID | if prefetched { FLAG_PREFETCHED } else { 0 };
        self.lru[victim] = clock;
        (evicted, victim)
    }

    /// Scalar reference fill scan: one pass finds a present line
    /// (`Ok(idx)`) or the LRU victim (`Err(idx)`). An invalid way ranks as
    /// stamp 0 (valid stamps are ≥ 1), first-minimum wins — the same
    /// victim a `min_by_key` over the ways would pick.
    #[inline]
    fn fill_scan_scalar(&self, base: usize, line: u64) -> Result<usize, usize> {
        let mut victim = base;
        let mut victim_key = u64::MAX;
        for idx in base..base + self.ways {
            let flags = self.flags[idx];
            if flags & FLAG_VALID != 0 {
                if self.tags[idx] == line {
                    return Ok(idx);
                }
                if self.lru[idx] < victim_key {
                    victim_key = self.lru[idx];
                    victim = idx;
                }
            } else if victim_key > 0 {
                victim_key = 0;
                victim = idx;
            }
        }
        Err(victim)
    }

    /// Chunked fill scan: the present-check reuses the masked whole-set tag
    /// compare, then the LRU victim falls out of a branchless min-reduction
    /// over per-way keys `lru * valid` — 0 for invalid ways, the stamp
    /// (≥ 1) for valid ones, exactly the ranking the scalar scan applies.
    /// Chunks are visited in way order and only a strictly smaller chunk
    /// minimum displaces the running victim, so the first-minimum way wins
    /// just as in the scalar pass.
    #[inline]
    fn fill_scan_chunked(&self, base: usize, line: u64) -> Result<usize, usize> {
        if let Some(idx) = self.find_chunked(line) {
            debug_assert!(self.flags[idx] & FLAG_VALID != 0);
            return Ok(idx);
        }
        let flags = &self.flags[base..base + self.ways];
        let lru = &self.lru[base..base + self.ways];
        let mut victim = base;
        let mut victim_key = u64::MAX;
        let mut offset = 0;
        let mut flag_chunks = flags.chunks_exact(WAY_CHUNK);
        let mut lru_chunks = lru.chunks_exact(WAY_CHUNK);
        for (flag_chunk, lru_chunk) in (&mut flag_chunks).zip(&mut lru_chunks) {
            let flag_chunk: &[u8; WAY_CHUNK] = flag_chunk.try_into().expect("exact chunk");
            let lru_chunk: &[u64; WAY_CHUNK] = lru_chunk.try_into().expect("exact chunk");
            let mut keys = [0u64; WAY_CHUNK];
            for lane in 0..WAY_CHUNK {
                keys[lane] = lru_chunk[lane] * u64::from(flag_chunk[lane] & FLAG_VALID);
            }
            let mut chunk_min = u64::MAX;
            for &key in &keys {
                chunk_min = chunk_min.min(key);
            }
            if chunk_min < victim_key {
                victim_key = chunk_min;
                let lane = keys
                    .iter()
                    .position(|&key| key == chunk_min)
                    .expect("chunk minimum is in the chunk");
                victim = base + offset + lane;
            }
            offset += WAY_CHUNK;
        }
        for (lane, (&way_flags, &stamp)) in flag_chunks
            .remainder()
            .iter()
            .zip(lru_chunks.remainder())
            .enumerate()
        {
            let key = stamp * u64::from(way_flags & FLAG_VALID);
            if key < victim_key {
                victim_key = key;
                victim = base + offset + lane;
            }
        }
        Err(victim)
    }

    /// Fills `line` for a **late** prefetch: the demand access that is
    /// currently waiting on the in-flight prefetch consumes the line the
    /// moment it lands, so this counts both the prefetch fill and its use
    /// and leaves the line's prefetched bit clear (a later eviction must
    /// not classify it as a wrong prefetch).
    pub fn fill_late_prefetch(&mut self, line: u64) -> Option<Evicted> {
        let (evicted, idx) = self.fill_inner(line, true);
        if self.flags[idx] & FLAG_PREFETCHED != 0 {
            self.flags[idx] &= !FLAG_PREFETCHED;
            self.stats.prefetch_used += 1;
        }
        evicted
    }
}

/// A line evicted by [`Cache::fill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted line index.
    pub line: u64,
    /// True if the line was prefetched and never used (a *wrong* prefetch).
    pub unused_prefetch: bool,
}

/// An in-flight prefetch fill tracked by the [`Mshr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inflight {
    /// Cycle at which the fill completes.
    pub ready: u64,
    /// Whether the fill also targets the L1 (L1-prefetcher initiated).
    pub fill_l1: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    ready: u64,
    line: u64,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by readiness.
        other
            .ready
            .cmp(&self.ready)
            .then(other.line.cmp(&self.line))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Slot states for the open-addressed MSHR table, kept as raw bytes in a
/// structure-of-arrays layout so the chunked ready-sweep can compare a
/// whole chunk of states at once.
const STATE_EMPTY: u8 = 0;
const STATE_LIVE: u8 = 1;
/// Tombstone: keeps probe chains intact after a removal; reclaimed on the
/// next rehash.
const STATE_DEAD: u8 = 2;

/// Miss-status holding registers for in-flight *prefetch* fills.
///
/// Demand misses in this model fill immediately (their latency is charged to
/// the load), but prefetches stay "in flight" until their completion cycle so
/// that a demand access arriving earlier can be classified as covered by a
/// **late** prefetch (paper Fig. 9).
///
/// Lines are indexed by an open-addressed table (multiplicative hashing,
/// linear probing, tombstone deletion) rather than a `HashMap`: the MSHR is
/// probed on every L2 access and `SipHash` dominated the lookup cost. The
/// table is stored structure-of-arrays (states, lines, readys, L1 bits in
/// parallel vectors) so the chunked drain can gather completion masks over
/// whole chunks.
///
/// Completion ordering is mode-dependent but bit-identical:
///
/// - **scalar** (reference): a min-heap whose entries carry the `ready`
///   stamp they were posted with; an entry is stale — the line was removed
///   or re-posted since — exactly when its stamp no longer matches the
///   table, so drains skip it without any eager heap surgery.
/// - **chunked**: no heap at all. A drain sweeps the whole table in
///   [`MSHR_CHUNK`]-slot chunks, gathers the completed entries and the
///   earliest still-pending stamp in one pass, and sorts the completions by
///   `(ready, line)` — the exact pop order of the heap, with staleness
///   impossible because the table itself is the only source of truth.
///
/// Either way, `earliest` caches a lower bound on the next completion so
/// the common "nothing landed yet" drain is a single compare.
#[derive(Debug, Clone)]
pub struct Mshr {
    /// [`STATE_EMPTY`] / [`STATE_LIVE`] / [`STATE_DEAD`] per slot.
    states: Vec<u8>,
    /// Line index per live slot.
    lines: Vec<u64>,
    /// Completion cycle per live slot.
    readys: Vec<u64>,
    /// 1 when the fill also targets the L1, else 0.
    fill_l1s: Vec<u8>,
    /// `states.len() - 1`; the table size is a power of two.
    mask: usize,
    /// Number of live entries.
    live: usize,
    /// Live entries plus tombstones (bounds probe-chain length; reset by
    /// rehashing).
    used: usize,
    /// Completion order for the scalar mode; unused (empty) when chunked.
    order: BinaryHeap<HeapEntry>,
    /// Lower bound on the earliest in-flight completion, `u64::MAX` when
    /// none are in flight. Exact in scalar mode; in chunked mode a removal
    /// can leave it low, which only costs one empty sweep.
    earliest: u64,
    /// Reused `(ready, line, fill_l1)` buffer for the chunked drain sort.
    sweep: Vec<(u64, u64, bool)>,
    /// Use the scalar reference kernels; latched at construction.
    scalar: bool,
}

impl Default for Mshr {
    fn default() -> Self {
        Mshr::new()
    }
}

/// Lane count for the chunked MSHR sweep; the table size is a power of two
/// ≥ 64, so every sweep divides into exact chunks.
const MSHR_CHUNK: usize = 8;

impl Mshr {
    const INITIAL_SLOTS: usize = 64;

    /// Creates an empty MSHR file.
    pub fn new() -> Self {
        Mshr {
            states: vec![STATE_EMPTY; Self::INITIAL_SLOTS],
            lines: vec![0; Self::INITIAL_SLOTS],
            readys: vec![0; Self::INITIAL_SLOTS],
            fill_l1s: vec![0; Self::INITIAL_SLOTS],
            mask: Self::INITIAL_SLOTS - 1,
            live: 0,
            used: 0,
            order: BinaryHeap::new(),
            earliest: u64::MAX,
            sweep: Vec::new(),
            scalar: hotpath::scalar_kernels(),
        }
    }

    /// Number of in-flight prefetches.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    #[inline]
    fn bucket(&self, line: u64) -> usize {
        // Multiplicative (Fibonacci) hashing: the golden-ratio multiply
        // mixes low line bits into the high bits we index with.
        ((line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & self.mask
    }

    /// Probes for `line`: the index of its live slot if present, and the
    /// slot where an insert should land (first tombstone on the chain, else
    /// the terminating empty slot).
    #[inline]
    fn probe(&self, line: u64) -> (Option<usize>, usize) {
        let mut idx = self.bucket(line);
        let mut insert_at = None;
        loop {
            match self.states[idx] {
                STATE_EMPTY => return (None, insert_at.unwrap_or(idx)),
                STATE_LIVE if self.lines[idx] == line => return (Some(idx), idx),
                STATE_DEAD if insert_at.is_none() => insert_at = Some(idx),
                _ => {}
            }
            idx = (idx + 1) & self.mask;
        }
    }

    fn rehash(&mut self, new_len: usize) {
        let old_states = std::mem::replace(&mut self.states, vec![STATE_EMPTY; new_len]);
        let old_lines = std::mem::replace(&mut self.lines, vec![0; new_len]);
        let old_readys = std::mem::replace(&mut self.readys, vec![0; new_len]);
        let old_fill_l1s = std::mem::replace(&mut self.fill_l1s, vec![0; new_len]);
        self.mask = new_len - 1;
        self.used = self.live;
        for (slot, &state) in old_states.iter().enumerate() {
            if state == STATE_LIVE {
                let (_, idx) = self.probe(old_lines[slot]);
                self.states[idx] = STATE_LIVE;
                self.lines[idx] = old_lines[slot];
                self.readys[idx] = old_readys[slot];
                self.fill_l1s[idx] = old_fill_l1s[slot];
            }
        }
    }

    /// Looks up an in-flight prefetch for `line`.
    pub fn get(&self, line: u64) -> Option<Inflight> {
        self.probe(line).0.map(|idx| Inflight {
            ready: self.readys[idx],
            fill_l1: self.fill_l1s[idx] != 0,
        })
    }

    /// Registers a prefetch for `line` completing at `ready`; `fill_l1`
    /// additionally fills the L1 on completion (L1-prefetcher requests).
    /// Returns false (and does nothing) if the line is already in flight.
    pub fn insert(&mut self, line: u64, ready: u64, fill_l1: bool) -> bool {
        // Keep the load factor (live + tombstones) under 3/4 so probe
        // chains stay short. Grow only when the *live* count needs the
        // room; when tombstones from drained completions drive the load,
        // rehash in place to reclaim them — otherwise steady
        // insert/complete churn doubles the table forever, and the chunked
        // drain's whole-table sweep pays for every doubling.
        if (self.used + 1) * 4 > self.states.len() * 3 {
            let new_len = if (self.live + 1) * 4 > self.states.len() * 3 {
                self.states.len() * 2
            } else {
                self.states.len()
            };
            self.rehash(new_len);
        }
        let (found, insert_at) = self.probe(line);
        if found.is_some() {
            return false;
        }
        if self.states[insert_at] == STATE_EMPTY {
            self.used += 1;
        }
        self.states[insert_at] = STATE_LIVE;
        self.lines[insert_at] = line;
        self.readys[insert_at] = ready;
        self.fill_l1s[insert_at] = u8::from(fill_l1);
        self.live += 1;
        if self.scalar {
            self.order.push(HeapEntry { ready, line });
        }
        self.earliest = self.earliest.min(ready);
        true
    }

    /// Removes `line` (e.g. a demand miss arrived and took over the fill).
    pub fn remove(&mut self, line: u64) {
        if let (Some(idx), _) = self.probe(line) {
            self.states[idx] = STATE_DEAD;
            self.live -= 1;
        }
        // Scalar: the heap entry becomes stale and is skipped on drain.
        // Either mode: `earliest` may now read low, which only costs a
        // harmless extra heap peek (scalar) or empty table sweep (chunked).
    }

    /// Pops every prefetch that has completed by `now`, returning
    /// `(line, fill_l1)` pairs, oldest first.
    pub fn drain_ready(&mut self, now: u64) -> Vec<(u64, bool)> {
        let mut done = Vec::new();
        self.drain_ready_into(now, &mut done);
        done
    }

    /// Allocation-free [`Mshr::drain_ready`]: clears `done` and fills it
    /// with the completed `(line, fill_l1)` pairs, oldest first. When no
    /// fill has completed — the overwhelmingly common per-access case —
    /// this is a single compare against the cached earliest completion.
    pub fn drain_ready_into(&mut self, now: u64, done: &mut Vec<(u64, bool)>) {
        done.clear();
        if now < self.earliest {
            return;
        }
        if self.scalar {
            self.drain_scalar(now, done);
        } else {
            self.drain_chunked(now, done);
        }
    }

    /// Scalar reference drain: pop the heap in `(ready, line)` order,
    /// skipping stale entries whose MSHR was removed or re-posted (the
    /// posted `ready` stamp no longer matches the live slot).
    fn drain_scalar(&mut self, now: u64, done: &mut Vec<(u64, bool)>) {
        while let Some(&HeapEntry { ready, line }) = self.order.peek() {
            if ready > now {
                break;
            }
            self.order.pop();
            if let (Some(idx), _) = self.probe(line) {
                if self.readys[idx] == ready {
                    let fill_l1 = self.fill_l1s[idx] != 0;
                    self.states[idx] = STATE_DEAD;
                    self.live -= 1;
                    done.push((line, fill_l1));
                }
            }
        }
        self.earliest = self.order.peek().map_or(u64::MAX, |entry| entry.ready);
    }

    /// Chunked drain: one sweep over the whole table gathers, per
    /// [`MSHR_CHUNK`]-slot chunk, a branchless completion mask and the
    /// minimum still-pending stamp. Completions are then sorted by
    /// `(ready, line)` — live lines are unique, so this is exactly the
    /// scalar heap's pop order — and `earliest` comes out exact.
    fn drain_chunked(&mut self, now: u64, done: &mut Vec<(u64, bool)>) {
        let mut sweep = std::mem::take(&mut self.sweep);
        sweep.clear();
        let mut next_earliest = u64::MAX;
        debug_assert_eq!(self.states.len() % MSHR_CHUNK, 0);
        for base in (0..self.states.len()).step_by(MSHR_CHUNK) {
            let state_chunk: [u8; MSHR_CHUNK] = self.states[base..base + MSHR_CHUNK]
                .try_into()
                .expect("exact chunk");
            let ready_chunk: [u64; MSHR_CHUNK] = self.readys[base..base + MSHR_CHUNK]
                .try_into()
                .expect("exact chunk");
            let mut done_mask = 0u32;
            let mut pending_min = u64::MAX;
            for lane in 0..MSHR_CHUNK {
                let live = state_chunk[lane] == STATE_LIVE;
                let completed = live && ready_chunk[lane] <= now;
                done_mask |= u32::from(completed) << lane;
                let pending_key = if live && ready_chunk[lane] > now {
                    ready_chunk[lane]
                } else {
                    u64::MAX
                };
                pending_min = pending_min.min(pending_key);
            }
            next_earliest = next_earliest.min(pending_min);
            while done_mask != 0 {
                let idx = base + done_mask.trailing_zeros() as usize;
                done_mask &= done_mask - 1;
                sweep.push((self.readys[idx], self.lines[idx], self.fill_l1s[idx] != 0));
                self.states[idx] = STATE_DEAD;
                self.live -= 1;
            }
        }
        sweep.sort_unstable();
        done.extend(sweep.iter().map(|&(_, line, fill_l1)| (line, fill_l1)));
        sweep.clear();
        self.sweep = sweep;
        self.earliest = next_earliest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 2 sets x 2 ways.
        Cache::new(CacheParams {
            capacity_bytes: 4 * 64,
            ways: 2,
            latency: 4,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache();
        assert_eq!(c.demand_lookup(10), LookupResult::Miss);
        c.fill(10, false);
        assert_eq!(
            c.demand_lookup(10),
            LookupResult::Hit {
                first_prefetch_use: false
            }
        );
        assert_eq!(c.stats().demand_hits, 1);
        assert_eq!(c.stats().demand_misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_cache();
        // Lines 0, 2, 4 map to set 0 (2 sets).
        c.fill(0, false);
        c.fill(2, false);
        c.demand_lookup(0); // refresh line 0
        let evicted = c.fill(4, false); // must evict line 2
        assert_eq!(
            evicted,
            Some(Evicted {
                line: 2,
                unused_prefetch: false
            })
        );
        assert!(c.contains(0));
        assert!(c.contains(4));
    }

    #[test]
    fn prefetch_bit_counts_first_use_only() {
        let mut c = small_cache();
        c.fill(6, true);
        assert_eq!(
            c.demand_lookup(6),
            LookupResult::Hit {
                first_prefetch_use: true
            }
        );
        assert_eq!(
            c.demand_lookup(6),
            LookupResult::Hit {
                first_prefetch_use: false
            }
        );
        assert_eq!(c.stats().prefetch_used, 1);
        assert_eq!(c.stats().prefetch_fills, 1);
    }

    #[test]
    fn late_prefetch_fill_counts_fill_and_use() {
        let mut c = small_cache();
        c.fill_late_prefetch(6);
        assert_eq!(c.stats().prefetch_fills, 1);
        assert_eq!(c.stats().prefetch_used, 1);
        // The bit was consumed: the next demand hit is an ordinary hit and
        // an eviction would not count as a wrong prefetch.
        assert_eq!(
            c.demand_lookup(6),
            LookupResult::Hit {
                first_prefetch_use: false
            }
        );
        assert_eq!(c.stats().prefetch_used, 1);
    }

    #[test]
    fn unused_prefetch_eviction_counts_as_wrong() {
        let mut c = small_cache();
        c.fill(0, true);
        c.fill(2, false);
        c.fill(4, false); // evicts line 0 (prefetched, unused)
        assert_eq!(c.stats().prefetch_evicted_unused, 1);
    }

    #[test]
    fn refilling_present_line_does_not_duplicate() {
        let mut c = small_cache();
        c.fill(8, false);
        assert_eq!(c.fill(8, false), None);
        assert!(c.contains(8));
    }

    #[test]
    fn invalid_way_is_preferred_over_eviction() {
        let mut c = small_cache();
        c.fill(0, false);
        // The second fill into set 0 must take the free way, not evict.
        assert_eq!(c.fill(2, false), None);
        assert!(c.contains(0));
        assert!(c.contains(2));
    }

    #[test]
    fn non_pow2_set_count_maps_lines_consistently() {
        // 3 sets x 2 ways exercises the modulo fallback (cf. the Fig. 11
        // alternate LLC with 1536 sets).
        let mut c = Cache::new(CacheParams {
            capacity_bytes: 6 * 64,
            ways: 2,
            latency: 4,
        });
        for line in 0..12u64 {
            c.fill(line, false);
        }
        // The last two fills per set survive: lines 6..12 (two per set).
        for line in 6..12u64 {
            assert!(c.contains(line), "line {line}");
        }
        for line in 0..6u64 {
            assert!(!c.contains(line), "line {line}");
        }
    }

    #[test]
    fn mshr_tracks_and_drains_in_order() {
        let mut m = Mshr::new();
        assert!(m.insert(1, 100, false));
        assert!(m.insert(2, 50, true));
        assert!(!m.insert(1, 70, false), "duplicate rejected");
        assert_eq!(m.len(), 2);
        assert_eq!(m.drain_ready(49), Vec::<(u64, bool)>::new());
        assert_eq!(m.drain_ready(100), vec![(2, true), (1, false)]);
        assert!(m.is_empty());
    }

    #[test]
    fn mshr_remove_cancels_fill() {
        let mut m = Mshr::new();
        m.insert(5, 10, false);
        m.remove(5);
        assert_eq!(m.drain_ready(1000), Vec::<(u64, bool)>::new());
    }

    #[test]
    fn mshr_get_reports_ready_cycle() {
        let mut m = Mshr::new();
        m.insert(3, 42, true);
        assert_eq!(
            m.get(3),
            Some(Inflight {
                ready: 42,
                fill_l1: true
            })
        );
        assert_eq!(m.get(4), None);
    }

    #[test]
    fn mshr_repost_after_remove_uses_new_ready() {
        let mut m = Mshr::new();
        m.insert(9, 100, false);
        m.remove(9);
        assert!(m.insert(9, 200, true), "slot is reusable after removal");
        // The stale heap entry (ready 100) must not drain the re-posted
        // fill early.
        assert_eq!(m.drain_ready(150), Vec::<(u64, bool)>::new());
        assert_eq!(m.get(9).map(|i| i.ready), Some(200));
        assert_eq!(m.drain_ready(250), vec![(9, true)]);
    }

    #[test]
    fn mshr_survives_growth_beyond_initial_capacity() {
        let mut m = Mshr::new();
        for line in 0..500u64 {
            assert!(m.insert(line, 1000 + line, line % 2 == 0));
        }
        assert_eq!(m.len(), 500);
        for line in 0..500u64 {
            assert_eq!(
                m.get(line),
                Some(Inflight {
                    ready: 1000 + line,
                    fill_l1: line % 2 == 0
                })
            );
        }
        let drained = m.drain_ready(2000);
        assert_eq!(drained.len(), 500);
        // Oldest first.
        assert_eq!(drained[0], (0, true));
        assert_eq!(drained[499], (499, false));
        assert!(m.is_empty());
    }

    #[test]
    fn mshr_drain_into_reuses_the_buffer() {
        let mut m = Mshr::new();
        let mut scratch = vec![(7u64, true)]; // stale content must be cleared
        m.insert(1, 10, false);
        m.drain_ready_into(5, &mut scratch);
        assert!(scratch.is_empty());
        m.drain_ready_into(10, &mut scratch);
        assert_eq!(scratch, vec![(1, false)]);
    }

    mod differential {
        //! Chunked vs scalar kernel differentials: the whole-set tag
        //! compare / LRU victim scan and the batched MSHR ready-probe must
        //! be observationally identical to the scalar reference under
        //! arbitrary operation sequences.

        use super::*;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use std::sync::Mutex;

        /// Builds one scalar-mode and one chunked-mode instance. The
        /// kernel mode is process-wide and latched at construction, so
        /// both constructions happen under one lock and the mode is
        /// restored to the default afterwards.
        fn ab_pair<T>(build: impl Fn() -> T) -> (T, T) {
            static MODE_LOCK: Mutex<()> = Mutex::new(());
            let _guard = MODE_LOCK.lock().unwrap();
            crate::hotpath::force_scalar(true);
            let scalar = build();
            crate::hotpath::force_scalar(false);
            let chunked = build();
            (scalar, chunked)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Every cache observable — lookup results, evictions,
            /// residency, stats — is identical across kernel modes for
            /// arbitrary geometries (ways crossing the chunk width) and
            /// access mixes dense enough to force constant set conflict.
            #[test]
            fn chunked_cache_matches_scalar_reference(
                case in 0u64..u64::MAX,
                ways in 1u32..=20,
                sets_pow in 0u32..3,
                ops in 1usize..400,
            ) {
                let params = CacheParams {
                    capacity_bytes: (64 * u64::from(ways)) << sets_pow,
                    ways,
                    latency: 4,
                };
                let (mut scalar, mut chunked) = ab_pair(|| Cache::new(params));
                let mut rng = StdRng::seed_from_u64(case);
                let lines = u64::from(ways * 4) << sets_pow;
                for _ in 0..ops {
                    let line = rng.gen_range(0..lines);
                    match rng.gen_range(0..4) {
                        0 => prop_assert_eq!(
                            scalar.demand_lookup(line),
                            chunked.demand_lookup(line)
                        ),
                        1 => {
                            let prefetched = rng.gen();
                            prop_assert_eq!(
                                scalar.fill(line, prefetched),
                                chunked.fill(line, prefetched)
                            );
                        }
                        2 => prop_assert_eq!(
                            scalar.fill_late_prefetch(line),
                            chunked.fill_late_prefetch(line)
                        ),
                        _ => prop_assert_eq!(scalar.contains(line), chunked.contains(line)),
                    }
                }
                prop_assert_eq!(scalar.stats(), chunked.stats());
            }

            /// Every MSHR observable — insert admission, lookups, drain
            /// contents *and order*, size — is identical across kernel
            /// modes under insert/remove/drain churn that drives growth
            /// and tombstone reclamation.
            #[test]
            fn chunked_mshr_matches_scalar_reference(
                case in 0u64..u64::MAX,
                ops in 1usize..600,
            ) {
                let (mut scalar, mut chunked) = ab_pair(Mshr::new);
                let mut rng = StdRng::seed_from_u64(case);
                let mut now = 0u64;
                for _ in 0..ops {
                    let line = rng.gen_range(0..96);
                    match rng.gen_range(0..5) {
                        0 | 1 => {
                            let ready = now + rng.gen_range(0..50u64);
                            let fill_l1 = rng.gen();
                            prop_assert_eq!(
                                scalar.insert(line, ready, fill_l1),
                                chunked.insert(line, ready, fill_l1)
                            );
                        }
                        2 => {
                            scalar.remove(line);
                            chunked.remove(line);
                        }
                        3 => prop_assert_eq!(scalar.get(line), chunked.get(line)),
                        _ => {
                            now += rng.gen_range(0..25u64);
                            prop_assert_eq!(scalar.drain_ready(now), chunked.drain_ready(now));
                        }
                    }
                    prop_assert_eq!(scalar.len(), chunked.len());
                }
                now += 1000;
                prop_assert_eq!(scalar.drain_ready(now), chunked.drain_ready(now));
                prop_assert!(scalar.is_empty() && chunked.is_empty());
            }
        }
    }
}
