//! Kernel-mode selection for this crate's hot loops — see
//! [`mab_telemetry::hotpath`]. Re-exported here so memsim callers (and the
//! differential tests) flip the same process-wide switch the other
//! simulator crates read.

pub use mab_telemetry::hotpath::{force_scalar, scalar_kernels};
