//! Simulated system parameters (paper Table 4 and §6.1 variants).

use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways).
    pub ways: u32,
    /// Access latency in cycles (cumulative from the core's point of view is
    /// computed by the system).
    pub latency: u32,
}

impl CacheParams {
    /// Number of sets for 64-byte lines.
    pub fn sets(&self) -> u64 {
        (self.capacity_bytes / 64 / self.ways as u64).max(1)
    }
}

/// Core pipeline parameters relevant to the interval timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreParams {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Reorder-buffer entries (the lookahead window for MLP).
    pub rob_size: u32,
    /// Core frequency in MHz (4 GHz in Table 4).
    pub freq_mhz: u64,
}

/// Full single/multi-core system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Core parameters (identical across cores).
    pub core: CoreParams,
    /// L1 data cache.
    pub l1: CacheParams,
    /// Private L2.
    pub l2: CacheParams,
    /// Shared last-level cache capacity *per core*.
    pub llc_per_core: CacheParams,
    /// DRAM bandwidth in megatransfers per second (8-byte transfers;
    /// 2400 MTPS is the paper's baseline, Fig. 10 sweeps 150–9600).
    pub dram_mtps: u64,
    /// Effective DRAM access latency in cycles (stands in for the loaded
    /// row-access latency of a detailed DRAM model; queueing on the data bus
    /// is modeled separately).
    pub dram_latency: u32,
    /// Maximum in-flight prefetches per core.
    pub prefetch_queue: usize,
    /// Maximum outstanding demand misses per core (L1 MSHRs). This is what
    /// limits a core's natural memory-level parallelism and what makes
    /// prefetching (which does not occupy demand MSHRs) valuable.
    pub demand_mshrs: usize,
}

impl Default for SystemConfig {
    /// The paper's Table 4 configuration: Skylake-like core, 32 KB L1,
    /// 256 KB L2, 2 MB LLC/core, 2400 MTPS DRAM.
    fn default() -> Self {
        SystemConfig {
            core: CoreParams {
                fetch_width: 6,
                commit_width: 4,
                rob_size: 256,
                freq_mhz: 4000,
            },
            l1: CacheParams {
                capacity_bytes: 32 * 1024,
                ways: 8,
                latency: 4,
            },
            l2: CacheParams {
                capacity_bytes: 256 * 1024,
                ways: 8,
                latency: 10,
            },
            llc_per_core: CacheParams {
                capacity_bytes: 2 * 1024 * 1024,
                ways: 16,
                latency: 26,
            },
            dram_mtps: 2400,
            dram_latency: 180,
            prefetch_queue: 32,
            demand_mshrs: 12,
        }
    }
}

impl SystemConfig {
    /// The alternative hierarchy of Fig. 11: L2 = 1 MB, LLC = 1.5 MB/core.
    pub fn alt_cache() -> Self {
        let mut cfg = SystemConfig::default();
        cfg.l2.capacity_bytes = 1024 * 1024;
        cfg.llc_per_core.capacity_bytes = 3 * 1024 * 1024 / 2;
        cfg
    }

    /// Replaces the DRAM bandwidth (Fig. 10 sweep).
    pub fn with_dram_mtps(mut self, mtps: u64) -> Self {
        self.dram_mtps = mtps;
        self
    }

    /// Cycles the DRAM data bus is busy transferring one 64-byte line:
    /// `freq · 64 B / (MTPS · 8 B)`.
    pub fn dram_service_cycles(&self) -> f64 {
        self.core.freq_mhz as f64 * 64.0 / (self.dram_mtps as f64 * 8.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table4_sizes() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.l1.sets(), 64); // 32KB / 64B / 8 ways
        assert_eq!(cfg.l2.sets(), 512);
        assert_eq!(cfg.llc_per_core.sets(), 2048);
        assert_eq!(cfg.core.rob_size, 256);
    }

    #[test]
    fn alt_cache_changes_only_l2_and_llc() {
        let alt = SystemConfig::alt_cache();
        let base = SystemConfig::default();
        assert_eq!(alt.l2.capacity_bytes, 1024 * 1024);
        assert_eq!(alt.llc_per_core.capacity_bytes, 3 * 1024 * 1024 / 2);
        assert_eq!(alt.l1, base.l1);
        assert_eq!(alt.core, base.core);
    }

    #[test]
    fn dram_service_time_scales_inversely_with_bandwidth() {
        let base = SystemConfig::default();
        let slow = base.with_dram_mtps(150);
        let fast = base.with_dram_mtps(9600);
        assert!((base.dram_service_cycles() - 13.333).abs() < 0.01);
        assert!((slow.dram_service_cycles() / base.dram_service_cycles() - 16.0).abs() < 0.01);
        assert!((base.dram_service_cycles() / fast.dram_service_cycles() - 4.0).abs() < 0.01);
    }
}
