//! The prefetcher hook interface.
//!
//! Prefetchers attach to the L2: they are trained on every L2 demand access
//! (i.e. every L1 miss) and their prefetches fill into L2 and LLC (§6.1).
//! Implementations live in the `mab-prefetch` crate; this module only
//! defines the contract plus the trivial [`NoPrefetcher`] baseline.

use mab_workloads::MemKind;

/// Everything a prefetcher sees about one L2 demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Access {
    /// Program counter of the triggering instruction.
    pub pc: u64,
    /// Cache-line index accessed.
    pub line: u64,
    /// Whether the access hit in L2.
    pub hit: bool,
    /// Current cycle (issue time of the access).
    pub cycle: u64,
    /// Instructions committed by the owning core so far (for IPC rewards).
    pub instructions: u64,
    /// Load or store.
    pub kind: MemKind,
}

/// Output buffer for prefetch requests (cache-line indices).
///
/// The system owns and recycles the buffer; prefetchers only `push` into it.
/// Requests beyond the per-core prefetch-queue capacity are dropped by the
/// system (counted as queue drops).
#[derive(Debug, Default, Clone)]
pub struct PrefetchQueue {
    lines: Vec<u64>,
}

impl PrefetchQueue {
    /// Creates an empty queue buffer.
    pub fn new() -> Self {
        PrefetchQueue::default()
    }

    /// Requests a prefetch of cache line `line`.
    pub fn push(&mut self, line: u64) {
        self.lines.push(line);
    }

    /// Number of requests currently buffered.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True if no requests are buffered.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Drains the buffered requests (system-side).
    pub fn drain(&mut self) -> std::vec::Drain<'_, u64> {
        self.lines.drain(..)
    }

    /// Moves the buffered requests into `out` (cleared first), leaving the
    /// queue empty. Allocation-free once both buffers are warm: the system
    /// calls this per access, so the buffers are recycled rather than
    /// collected into a fresh `Vec` each time.
    pub fn drain_into(&mut self, out: &mut Vec<u64>) {
        out.clear();
        std::mem::swap(&mut self.lines, out);
    }
}

/// An L2 prefetcher.
///
/// Beyond training, implementations may observe their prefetches' fates via
/// the `on_*` callbacks — Pythia's reward assignment needs them; simple
/// prefetchers ignore them (the default no-ops).
pub trait Prefetcher {
    /// Short name for reports (e.g. `"bingo"`).
    fn name(&self) -> &str;

    /// Called on every L2 demand access; pushes any prefetch requests into
    /// `queue`.
    fn train(&mut self, access: &L2Access, queue: &mut PrefetchQueue);

    /// A prefetch issued earlier finished filling into L2.
    fn on_prefetch_fill(&mut self, _line: u64, _cycle: u64) {}

    /// A demand access used a prefetched line for the first time (timely).
    fn on_prefetch_used(&mut self, _line: u64, _cycle: u64) {}

    /// A demand access hit a still-in-flight prefetch (late but useful).
    fn on_prefetch_late(&mut self, _line: u64, _cycle: u64) {}

    /// A prefetched line was evicted without ever being used (wrong).
    fn on_prefetch_evicted_unused(&mut self, _line: u64) {}
}

/// The no-prefetching baseline.
///
/// # Example
///
/// ```
/// use mab_memsim::{NoPrefetcher, Prefetcher, PrefetchQueue, L2Access};
/// use mab_workloads::MemKind;
///
/// let mut p = NoPrefetcher;
/// let mut q = PrefetchQueue::new();
/// p.train(&L2Access { pc: 0, line: 1, hit: false, cycle: 0, instructions: 0, kind: MemKind::Load }, &mut q);
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoPrefetcher;

impl Prefetcher for NoPrefetcher {
    fn name(&self) -> &str {
        "none"
    }

    fn train(&mut self, _access: &L2Access, _queue: &mut PrefetchQueue) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_push_and_drain() {
        let mut q = PrefetchQueue::new();
        q.push(10);
        q.push(11);
        assert_eq!(q.len(), 2);
        let drained: Vec<u64> = q.drain().collect();
        assert_eq!(drained, vec![10, 11]);
        assert!(q.is_empty());
    }

    #[test]
    fn no_prefetcher_never_prefetches() {
        let mut p = NoPrefetcher;
        let mut q = PrefetchQueue::new();
        for line in 0..100 {
            p.train(
                &L2Access {
                    pc: 0x400,
                    line,
                    hit: false,
                    cycle: line,
                    instructions: line,
                    kind: MemKind::Load,
                },
                &mut q,
            );
        }
        assert!(q.is_empty());
        assert_eq!(p.name(), "none");
    }
}
