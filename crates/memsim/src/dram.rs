//! Bandwidth-constrained DRAM model.
//!
//! The paper's Fig. 10 sweeps the available DRAM bandwidth from 150 to
//! 9600 MTPS and shows that Bandit learns to throttle aggressive prefetching
//! under bandwidth pressure *without* any explicit bandwidth signal — the
//! IPC reward carries the information. That effect only appears if the
//! simulator makes prefetch traffic contend with demand traffic, which is
//! exactly what this single-queue service model does.

use serde::{Deserialize, Serialize};

/// DRAM counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DramStats {
    /// Line transfers served.
    pub transfers: u64,
    /// Sum of queueing delays (cycles), for average-occupancy reporting.
    pub total_queue_delay: f64,
}

impl DramStats {
    /// Average queueing delay per transfer, in cycles.
    pub fn avg_queue_delay(&self) -> f64 {
        if self.transfers == 0 {
            0.0
        } else {
            self.total_queue_delay / self.transfers as f64
        }
    }
}

/// A single-channel DRAM with a fixed unloaded latency and a line-transfer
/// service rate derived from the configured MTPS.
///
/// Requests are serviced in arrival order; when the channel is busy the
/// request queues, so sustained over-subscription (e.g. useless prefetch
/// floods) inflates everyone's latency.
///
/// # Example
///
/// ```
/// use mab_memsim::dram::Dram;
///
/// let mut dram = Dram::new(13.33, 90);
/// let first = dram.access(0);
/// let second = dram.access(0); // queues behind the first
/// assert!(second > first);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dram {
    service_cycles: f64,
    latency: u32,
    busy_until: f64,
    stats: DramStats,
}

impl Dram {
    /// Creates a DRAM with `service_cycles` of bus occupancy per 64-byte
    /// line and `latency` cycles of unloaded access latency.
    pub fn new(service_cycles: f64, latency: u32) -> Self {
        Dram {
            service_cycles,
            latency,
            busy_until: 0.0,
            stats: DramStats::default(),
        }
    }

    /// Issues a line transfer at cycle `now`; returns the total latency in
    /// cycles (queueing + unloaded latency + transfer).
    pub fn access(&mut self, now: u64) -> u64 {
        let now = now as f64;
        let start = now.max(self.busy_until);
        let queue_delay = start - now;
        self.busy_until = start + self.service_cycles;
        self.stats.transfers += 1;
        self.stats.total_queue_delay += queue_delay;
        (queue_delay + self.latency as f64 + self.service_cycles).round() as u64
    }

    /// Outstanding channel busy time at cycle `now`, in cycles (0 when the
    /// channel is idle). This is the queueing pressure a request arriving now
    /// would see — the occupancy signal sampled into telemetry traces.
    pub fn backlog(&self, now: u64) -> f64 {
        (self.busy_until - now as f64).max(0.0)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Unloaded latency plus one transfer time (the minimum access latency).
    pub fn min_latency(&self) -> u64 {
        (self.latency as f64 + self.service_cycles).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_access_pays_min_latency() {
        let mut d = Dram::new(10.0, 90);
        assert_eq!(d.access(1000), 100);
    }

    #[test]
    fn back_to_back_accesses_queue() {
        let mut d = Dram::new(10.0, 90);
        let a = d.access(0);
        let b = d.access(0);
        let c = d.access(0);
        assert_eq!(a, 100);
        assert_eq!(b, 110);
        assert_eq!(c, 120);
        assert!(d.stats().avg_queue_delay() > 0.0);
    }

    #[test]
    fn queue_drains_when_idle() {
        let mut d = Dram::new(10.0, 90);
        d.access(0);
        // Long idle gap: the next access sees an idle channel again.
        assert_eq!(d.access(10_000), 100);
    }

    #[test]
    fn lower_bandwidth_means_longer_service() {
        let mut slow = Dram::new(213.0, 90);
        let mut fast = Dram::new(3.3, 90);
        assert!(slow.access(0) > fast.access(0));
    }

    #[test]
    fn backlog_tracks_channel_pressure() {
        let mut d = Dram::new(10.0, 90);
        assert_eq!(d.backlog(0), 0.0);
        d.access(0);
        d.access(0);
        assert_eq!(d.backlog(0), 20.0);
        assert_eq!(d.backlog(5), 15.0);
        assert_eq!(d.backlog(10_000), 0.0);
    }

    #[test]
    fn transfer_count_tracks_accesses() {
        let mut d = Dram::new(5.0, 50);
        for i in 0..7 {
            d.access(i * 1000);
        }
        assert_eq!(d.stats().transfers, 7);
    }
}
