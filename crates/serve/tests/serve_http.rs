//! End-to-end tests for the serve daemon: real HTTP server, real scheduler
//! and cache, stub executors instead of experiment binaries.

use mab_monitor::client::{self, SseClient};
use mab_monitor::http::{self, HttpConfig};
use mab_runner::CancelToken;
use mab_serve::{api, Executor, ServeConfig, ServeState};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deterministic stub: report derived from the spec, optional artificial
/// latency, run counting.
struct StubExecutor {
    runs: AtomicUsize,
    delay: Duration,
}

impl StubExecutor {
    fn new(delay: Duration) -> Arc<StubExecutor> {
        Arc::new(StubExecutor {
            runs: AtomicUsize::new(0),
            delay,
        })
    }

    fn runs(&self) -> usize {
        self.runs.load(Ordering::SeqCst)
    }
}

impl Executor for StubExecutor {
    fn run(
        &self,
        spec: &mab_experiments::spec::RunSpec,
        cancel: &CancelToken,
        _crash_dir: Option<&std::path::Path>,
    ) -> Result<String, String> {
        let deadline = Instant::now() + self.delay;
        while Instant::now() < deadline {
            if cancel.is_cancelled() {
                return Err("cancelled".to_string());
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.runs.fetch_add(1, Ordering::SeqCst);
        Ok(format!(
            "report {} i={} s={} m={} q={}\n",
            spec.experiment, spec.instructions, spec.seed, spec.mixes, spec.quick
        ))
    }
}

struct TestServer {
    state: Arc<ServeState>,
    server: http::ServerHandle,
    url: String,
    dir: PathBuf,
}

impl TestServer {
    fn start(
        tag: &str,
        executor: Arc<StubExecutor>,
        workers: usize,
        queue_cap: usize,
    ) -> TestServer {
        TestServer::start_with(tag, executor, workers, queue_cap)
    }

    fn start_with(
        tag: &str,
        executor: Arc<dyn Executor>,
        workers: usize,
        queue_cap: usize,
    ) -> TestServer {
        let dir = std::env::temp_dir().join(format!("mab-serve-e2e-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = ServeConfig {
            workers,
            queue_cap,
            cache_dir: dir.join("cache"),
            ledger_dir: Some(dir.join("ledger")),
            quiet: true,
        };
        let state = ServeState::start(config, executor).unwrap();
        let handler_state = Arc::clone(&state);
        let server = http::serve_with(
            "127.0.0.1:0",
            HttpConfig::from_env("serve-e2e"),
            Arc::clone(&state.http),
            Arc::new(AtomicBool::new(false)),
            Arc::new(move |req, conn| api::route(&handler_state, req, conn)),
        )
        .unwrap();
        let url = format!("http://{}", server.addr());
        TestServer {
            state,
            server,
            url,
            dir,
        }
    }

    fn post_job(&self, body: &str) -> client::HttpResponse {
        client::post(&format!("{}/jobs", self.url), body, Duration::from_secs(5)).unwrap()
    }

    fn get(&self, path: &str) -> client::HttpResponse {
        client::get(&format!("{}{path}", self.url), Duration::from_secs(5)).unwrap()
    }

    /// Polls `GET /jobs/:id` until the job reaches a terminal status.
    fn wait_done(&self, id: u64) -> mab_ledger::json::JsonValue {
        for _ in 0..400 {
            let resp = self.get(&format!("/jobs/{id}"));
            assert_eq!(resp.status, 200, "{}", resp.body);
            let doc = mab_ledger::json::parse(resp.body.trim()).unwrap();
            let status = doc
                .get("status")
                .and_then(|v| v.as_str())
                .unwrap()
                .to_string();
            if status == "done" || status == "failed" {
                return doc;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        panic!("job {id} never finished");
    }

    fn stop(self) -> PathBuf {
        let TestServer {
            state,
            mut server,
            dir,
            ..
        } = self;
        state.shutdown();
        server.shutdown();
        dir
    }
}

fn job_id(resp: &client::HttpResponse) -> u64 {
    assert_eq!(resp.status, 200, "{}", resp.body);
    mab_ledger::json::parse(resp.body.trim())
        .unwrap()
        .get("id")
        .and_then(|v| v.as_u64())
        .unwrap()
}

#[test]
fn submit_fetch_and_resubmit_hits_cache() {
    let executor = StubExecutor::new(Duration::ZERO);
    let srv = TestServer::start("roundtrip", Arc::clone(&executor), 2, 64);

    let resp = srv.post_job(
        "{\"experiment\":\"fig08_singlecore\",\"client\":\"t1\",\"seeds\":[1,2],\"quick\":true}",
    );
    let id = job_id(&resp);
    let doc = srv.wait_done(id);
    assert_eq!(doc.get("cache_hits").and_then(|v| v.as_u64()), Some(0));
    assert_eq!(executor.runs(), 2);

    // Per-arm artifact is the executor's exact bytes.
    let arm0 = srv.get(&format!("/jobs/{id}/artifact?arm=0"));
    assert_eq!(arm0.status, 200);
    assert_eq!(
        arm0.body,
        "report fig08_singlecore i=200000 s=1 m=2 q=true\n"
    );
    // Whole-job artifact concatenates with arm headers.
    let all = srv.get(&format!("/jobs/{id}/artifact"));
    assert!(all.body.starts_with("=== arm 0 "));
    assert!(all.body.contains("s=1"));
    assert!(all.body.contains("s=2"));

    // The ledger recorded one served line per arm, no cache hits yet.
    let ledger = mab_ledger::Ledger::open(srv.dir.join("ledger")).unwrap();
    let records = ledger.read_all().unwrap().records;
    assert_eq!(records.len(), 2);
    assert!(records
        .iter()
        .all(|r| r.served.as_deref() == Some("t1:0") && !r.cache_hit));

    // Identical resubmission: zero new executions, everything cache-served,
    // ledger dedups (no growth).
    let resp = srv.post_job(
        "{\"experiment\":\"fig08_singlecore\",\"client\":\"t2\",\"seeds\":[1,2],\"quick\":true}",
    );
    let id2 = job_id(&resp);
    let doc = srv.wait_done(id2);
    assert_eq!(doc.get("cache_hits").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(executor.runs(), 2);
    let arm0_again = srv.get(&format!("/jobs/{id2}/artifact?arm=0"));
    assert_eq!(arm0_again.body, arm0.body);
    assert_eq!(ledger.read_all().unwrap().records.len(), 2);

    let queue = srv.get("/queue");
    let qdoc = mab_ledger::json::parse(queue.body.trim()).unwrap();
    assert_eq!(qdoc.get("arms_executed").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(qdoc.get("arms_cached").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(qdoc.get("cache_entries").and_then(|v| v.as_u64()), Some(2));

    let dir = srv.stop();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn concurrent_identical_submissions_share_one_execution() {
    let executor = StubExecutor::new(Duration::from_millis(300));
    let srv = TestServer::start("inflight", Arc::clone(&executor), 2, 64);

    let body_a =
        "{\"experiment\":\"fig12_multilevel\",\"client\":\"alice\",\"seeds\":9,\"quick\":true}";
    let body_b =
        "{\"experiment\":\"fig12_multilevel\",\"client\":\"bob\",\"seeds\":9,\"quick\":true}";
    let id_a = job_id(&srv.post_job(body_a));
    let id_b = job_id(&srv.post_job(body_b));

    let doc_a = srv.wait_done(id_a);
    let doc_b = srv.wait_done(id_b);
    // Exactly one execution; the second arm subscribed to the first.
    assert_eq!(executor.runs(), 1);
    let hits_a = doc_a.get("cache_hits").and_then(|v| v.as_u64()).unwrap();
    let hits_b = doc_b.get("cache_hits").and_then(|v| v.as_u64()).unwrap();
    assert_eq!(hits_a + hits_b, 1);
    // Both serve identical bytes.
    let art_a = srv.get(&format!("/jobs/{id_a}/artifact"));
    let art_b = srv.get(&format!("/jobs/{id_b}/artifact"));
    assert_eq!(art_a.body, art_b.body);

    let dir = srv.stop();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn corrupt_cache_entries_are_recomputed_not_served() {
    let executor = StubExecutor::new(Duration::ZERO);
    let srv = TestServer::start("corrupt", Arc::clone(&executor), 1, 64);

    let body = "{\"experiment\":\"fig09_accuracy\",\"client\":\"c\",\"seeds\":3,\"quick\":true}";
    let id = job_id(&srv.post_job(body));
    srv.wait_done(id);
    assert_eq!(executor.runs(), 1);
    let good = srv.get(&format!("/jobs/{id}/artifact")).body;

    // Flip bytes in the stored report without touching its length.
    let digest = {
        let doc = mab_ledger::json::parse(srv.get(&format!("/jobs/{id}")).body.trim()).unwrap();
        let arms = doc
            .get("arms")
            .and_then(|v| v.as_arr().map(<[_]>::to_vec))
            .unwrap();
        arms[0]
            .get("digest")
            .and_then(|v| v.as_str())
            .unwrap()
            .to_string()
    };
    let report_path = srv.dir.join("cache").join(&digest).join("report.txt");
    let corrupted: String = good.chars().rev().collect();
    std::fs::write(&report_path, corrupted).unwrap();

    // The artifact endpoint refuses to serve the corrupt entry.
    let resp = srv.get(&format!("/jobs/{id}/artifact"));
    assert_eq!(resp.status, 503, "{}", resp.body);

    // A resubmission recomputes instead of serving the corrupt bytes.
    let id2 = job_id(&srv.post_job(body));
    let doc = srv.wait_done(id2);
    assert_eq!(doc.get("cache_hits").and_then(|v| v.as_u64()), Some(0));
    assert_eq!(executor.runs(), 2);
    assert_eq!(srv.get(&format!("/jobs/{id2}/artifact")).body, good);

    let dir = srv.stop();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn queue_cap_rejects_with_429() {
    let executor = StubExecutor::new(Duration::from_millis(400));
    let srv = TestServer::start("backpressure", Arc::clone(&executor), 1, 2);

    let first = srv.post_job(
        "{\"experiment\":\"fig10_bandwidth\",\"client\":\"a\",\"seeds\":[1,2],\"quick\":true}",
    );
    let id = job_id(&first);
    // Queue is at capacity (2 open arms): the next submission bounces.
    let rejected = srv.post_job(
        "{\"experiment\":\"fig10_bandwidth\",\"client\":\"b\",\"seeds\":7,\"quick\":true}",
    );
    assert_eq!(rejected.status, 429, "{}", rejected.body);

    // Capacity frees as arms finish; the retry is accepted.
    srv.wait_done(id);
    let retried = srv.post_job(
        "{\"experiment\":\"fig10_bandwidth\",\"client\":\"b\",\"seeds\":7,\"quick\":true}",
    );
    assert_eq!(retried.status, 200, "{}", retried.body);
    srv.wait_done(job_id(&retried));

    let dir = srv.stop();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn per_job_sse_streams_progress_to_job_done() {
    let executor = StubExecutor::new(Duration::from_millis(500));
    let srv = TestServer::start("sse", Arc::clone(&executor), 1, 64);

    let id = job_id(&srv.post_job(
        "{\"experiment\":\"fig11_altcache\",\"client\":\"s\",\"seeds\":5,\"quick\":true}",
    ));
    let mut sse = SseClient::connect(
        &format!("{}/jobs/{id}/events", srv.url),
        Duration::from_secs(5),
    )
    .unwrap();
    let mut saw_arm_done = false;
    let mut saw_job_done = false;
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline && !saw_job_done {
        match sse.next_frame() {
            Ok(Some(frame)) => {
                if frame.event == "arm_done" {
                    assert!(frame.data.contains("\"cache_hit\":false"), "{}", frame.data);
                    saw_arm_done = true;
                }
                if frame.event == "job_done" {
                    assert!(frame.data.contains("\"status\":\"done\""), "{}", frame.data);
                    saw_job_done = true;
                }
            }
            Ok(None) => break,
            Err(_) => {}
        }
    }
    assert!(saw_arm_done, "never saw arm_done on the job stream");
    assert!(saw_job_done, "never saw job_done on the job stream");

    let dir = srv.stop();
    std::fs::remove_dir_all(dir).ok();
}

/// Dies on every arm: writes a CRC-framed `.mabcrash` report into the
/// per-job crash directory (exactly what a crashing experiment binary
/// leaves behind) and reports failure.
struct CrashingExecutor;

impl Executor for CrashingExecutor {
    fn run(
        &self,
        spec: &mab_experiments::spec::RunSpec,
        _cancel: &CancelToken,
        crash_dir: Option<&std::path::Path>,
    ) -> Result<String, String> {
        let dir = crash_dir.expect("daemon passes a per-job crash dir");
        std::fs::create_dir_all(dir).unwrap();
        let body = format!(
            "{{\"kind\":\"crash\",\"cause\":\"panic\",\"message\":\"injected\",\
             \"thread\":\"main\",\"time_unix\":0,\"experiment\":\"{}\",\"digest\":\"d\"}}\n",
            spec.experiment
        );
        let header = format!(
            "{} {:08x} {}\n",
            mab_telemetry::blackbox::MAGIC,
            mab_telemetry::blackbox::crc32(body.as_bytes()),
            body.lines().count()
        );
        std::fs::write(
            dir.join(format!("crash-0-{}-0.mabcrash", spec.seed)),
            format!("{header}{body}"),
        )
        .unwrap();
        Err("simulated crash".to_string())
    }
}

#[test]
fn crashed_arms_are_attributed_and_exposed() {
    let srv = TestServer::start_with("crash", Arc::new(CrashingExecutor), 1, 64);

    let id = job_id(&srv.post_job(
        "{\"experiment\":\"fig08_singlecore\",\"client\":\"c\",\"seeds\":7,\"quick\":true}",
    ));
    let doc = srv.wait_done(id);
    assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("failed"));

    // The failing arm carries its crash report path, and the report is a
    // valid flight-recorder dump.
    let arms = doc
        .get("arms")
        .and_then(|v| v.as_arr().map(<[_]>::to_vec))
        .unwrap();
    let report = arms[0]
        .get("crash")
        .and_then(|v| v.as_str())
        .expect("failed arm has crash attribution")
        .to_string();
    let parsed = mab_telemetry::blackbox::read_report(std::path::Path::new(&report)).unwrap();
    assert_eq!(parsed.cause, "panic");

    // `GET /crashes` lists the report under the owning job.
    let crashes = srv.get("/crashes");
    assert_eq!(crashes.status, 200, "{}", crashes.body);
    let cdoc = mab_ledger::json::parse(crashes.body.trim()).unwrap();
    assert_eq!(cdoc.get("count").and_then(|v| v.as_u64()), Some(1));
    let rows = cdoc
        .get("crashes")
        .and_then(|v| v.as_arr().map(<[_]>::to_vec))
        .unwrap();
    assert_eq!(rows[0].get("job").and_then(|v| v.as_u64()), Some(id));
    assert_eq!(
        rows[0].get("report").and_then(|v| v.as_str()),
        Some(report.as_str())
    );

    // The crash count shows up on /queue and /metrics; the exposition page
    // stays well-formed (every sample line is `name[{labels}] value`).
    let qdoc = mab_ledger::json::parse(srv.get("/queue").body.trim()).unwrap();
    assert_eq!(qdoc.get("crashes").and_then(|v| v.as_u64()), Some(1));
    let metrics = srv.get("/metrics").body;
    assert!(metrics.contains("mab_serve_crashes_total 1"), "{metrics}");
    assert!(
        metrics.contains("mab_serve_cache_misses_total 0"),
        "{metrics}"
    );
    for line in metrics.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap();
        assert!(!series.is_empty(), "bad series in: {line}");
        assert!(
            value.parse::<f64>().is_ok() || matches!(value, "NaN" | "+Inf" | "-Inf"),
            "bad value in: {line}"
        );
    }

    let dir = srv.stop();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn queue_cap_rejections_are_counted() {
    let executor = StubExecutor::new(Duration::from_millis(400));
    let srv = TestServer::start("reject-count", Arc::clone(&executor), 1, 1);

    let id = job_id(&srv.post_job(
        "{\"experiment\":\"fig10_bandwidth\",\"client\":\"a\",\"seeds\":1,\"quick\":true}",
    ));
    let rejected = srv.post_job(
        "{\"experiment\":\"fig10_bandwidth\",\"client\":\"b\",\"seeds\":2,\"quick\":true}",
    );
    assert_eq!(rejected.status, 429, "{}", rejected.body);
    let metrics = srv.get("/metrics").body;
    assert!(
        metrics.contains("mab_serve_rejected_submissions_total 1"),
        "{metrics}"
    );
    let qdoc = mab_ledger::json::parse(srv.get("/queue").body.trim()).unwrap();
    assert_eq!(
        qdoc.get("rejected_submissions").and_then(|v| v.as_u64()),
        Some(1)
    );
    srv.wait_done(id);

    let dir = srv.stop();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn shutdown_persists_unfinished_jobs_and_resume_completes_them() {
    let executor = StubExecutor::new(Duration::from_millis(250));
    let srv = TestServer::start("resume", Arc::clone(&executor), 1, 64);

    // Three slow arms on one worker: shutdown lands mid-sweep.
    let id = job_id(&srv.post_job(
        "{\"experiment\":\"fig13_smt_scurve\",\"client\":\"r\",\"seeds\":[1,2,3],\"quick\":true}",
    ));
    std::thread::sleep(Duration::from_millis(100));
    let dir = srv.stop();

    // The drain finished some arms, persisted the rest.
    let jobs_json = std::fs::read_to_string(dir.join("cache").join("jobs.json")).unwrap();
    assert!(jobs_json.contains("\"queued\""), "{jobs_json}");
    let ran_before = executor.runs();
    assert!(ran_before < 3, "shutdown should leave work unfinished");

    // A fresh daemon over the same cache dir resumes and completes the job
    // without redoing finished arms.
    let config = ServeConfig {
        workers: 1,
        queue_cap: 64,
        cache_dir: dir.join("cache"),
        ledger_dir: Some(dir.join("ledger")),
        quiet: true,
    };
    let state = ServeState::start(config, executor.clone() as Arc<dyn Executor>).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let done = mab_ledger::json::parse(state.job_json(id).expect("job resumed").trim())
            .unwrap()
            .get("status")
            .and_then(|v| v.as_str())
            .map(str::to_string)
            .unwrap();
        if done == "done" {
            break;
        }
        assert!(Instant::now() < deadline, "resumed job never finished");
        std::thread::sleep(Duration::from_millis(25));
    }
    assert_eq!(executor.runs(), 3, "finished arms must not be re-executed");
    assert!(
        !dir.join("cache").join("jobs.json").exists(),
        "jobs.json should be consumed on resume"
    );
    let artifact = state.artifact(id, Some(2)).unwrap();
    assert!(artifact.contains("s=3"));
    state.shutdown();
    std::fs::remove_dir_all(dir).ok();
}
