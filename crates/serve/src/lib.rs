//! `mab-serve`: sweep-as-a-service for the Micro-Armed Bandit harness.
//!
//! A std-only HTTP/JSON daemon that accepts sweep submissions (an
//! experiment plus a config grid and seeds), executes them on a shared
//! worker pool with per-client fair scheduling, and memoizes every arm in
//! a content-addressed result cache keyed by the run ledger's
//! `(experiment, canonical config, code version)` digest. Identical work
//! is never simulated twice: resubmissions hit the on-disk cache, and two
//! clients racing the same sweep share a single in-flight execution.
//!
//! The crate reuses the repo's existing planes rather than inventing new
//! ones:
//!
//! - HTTP + SSE come from `mab-monitor`'s dependency-free server core
//!   ([`mab_monitor::http`], [`mab_monitor::sse`]);
//! - cache keys are [`mab_ledger::config_digest`] — the exact address the
//!   append-only run ledger dedups on — so "cache hit" and "ledger
//!   duplicate" can never disagree;
//! - execution leases come from [`mab_runner::WorkerPool`];
//! - run identities resolve through [`mab_experiments::spec`], the same
//!   registry the experiment binaries parse their CLIs against, so a
//!   served artifact is byte-identical to the binary invoked by hand.
//!
//! Module map: [`job`] (submission model + grid expansion), [`cache`]
//! (CRC-checked content-addressed store), [`exec`] (subprocess arm
//! execution), [`state`] (scheduler, dispatcher, persistence), [`api`]
//! (HTTP routes), [`signal`] (graceful-shutdown hooks).

#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod exec;
pub mod job;
pub mod signal;
pub mod state;

pub use cache::Cache;
pub use exec::{BinaryExecutor, Executor};
pub use job::{parse_job, Arm, ArmStatus, Job, JobSpec};
pub use state::{ArtifactError, ServeConfig, ServeState, SubmitError};
