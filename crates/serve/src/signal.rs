//! Minimal SIGTERM/SIGINT hook for graceful daemon shutdown.
//!
//! The workspace is dependency-free, so instead of a signal crate this
//! module registers a trivial `libc::signal`-style handler that flips one
//! process-global flag. The handler body is async-signal-safe (a single
//! relaxed atomic store); all actual shutdown work — draining the pool,
//! persisting the job table — happens on the main thread's poll loop in
//! `mab-serve`.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// True once SIGTERM or SIGINT has been received (or [`request`] called).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Flags shutdown as if a signal had arrived (used by tests and by the
/// daemon's own error paths).
pub fn request() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
mod unix {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    extern "C" fn handle(_signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        SHUTDOWN.store(true, Ordering::Relaxed);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    pub fn install() {
        // SAFETY: `signal(2)` with a handler that performs a single atomic
        // store is async-signal-safe; both signal numbers are the
        // POSIX-mandated constants on every Linux/macOS target we build.
        unsafe {
            signal(SIGINT, handle);
            signal(SIGTERM, handle);
        }
    }
}

/// Installs the SIGTERM/SIGINT handlers (no-op on non-unix targets).
pub fn install() {
    #[cfg(unix)]
    unix::install();
}
