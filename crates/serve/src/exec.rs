//! Arm execution strategies.
//!
//! The daemon's unit of work is "produce the stdout of one experiment
//! binary for one resolved [`RunSpec`]". The default [`BinaryExecutor`]
//! does exactly that — it spawns the experiment binary as a subprocess
//! with the spec's argv and captures stdout — which makes the
//! byte-identity guarantee *structural*: the served artifact IS the
//! binary's output, not a reimplementation of it. Subprocesses also give
//! clean cancellation (kill) and isolate the process-global telemetry
//! state that concurrent in-process runs would trample.
//!
//! Tests and benchmarks inject their own [`Executor`] implementations
//! (counting stubs, synthetic workloads) to exercise the queue, cache and
//! scheduler without paying for real simulations.

use mab_experiments::spec::RunSpec;
use mab_runner::CancelToken;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

/// Produces the report (stdout) for one resolved arm.
pub trait Executor: Send + Sync {
    /// Runs `spec` to completion, polling `cancel` at checkpoints.
    ///
    /// `crash_dir` is where the execution should leave a `.mabcrash`
    /// flight-recorder report if it dies (the daemon passes a per-job
    /// directory so crashes attribute back to the owning job); executors
    /// that cannot crash out-of-process may ignore it.
    ///
    /// # Errors
    ///
    /// A human-readable failure message (spawn failure, non-zero exit,
    /// cancellation).
    fn run(
        &self,
        spec: &RunSpec,
        cancel: &CancelToken,
        crash_dir: Option<&Path>,
    ) -> Result<String, String>;
}

/// Runs arms by spawning the experiment binaries found in `bin_dir`.
#[derive(Debug, Clone)]
pub struct BinaryExecutor {
    /// Directory holding the experiment binaries (typically the directory
    /// `mab-serve` itself runs from).
    pub bin_dir: PathBuf,
}

impl BinaryExecutor {
    /// An executor using the directory of the current executable — the
    /// right default when `mab-serve` is deployed next to the experiment
    /// binaries (as `cargo build` lays them out).
    pub fn next_to_current_exe() -> BinaryExecutor {
        let bin_dir = std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(PathBuf::from))
            .unwrap_or_else(|| PathBuf::from("."));
        BinaryExecutor { bin_dir }
    }
}

impl Executor for BinaryExecutor {
    fn run(
        &self,
        spec: &RunSpec,
        cancel: &CancelToken,
        crash_dir: Option<&Path>,
    ) -> Result<String, String> {
        let program = self.bin_dir.join(&spec.experiment);
        let mut command = Command::new(&program);
        command
            .args(spec.cli_args())
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            // Quiet progress lines; never inherit ledger/monitor settings —
            // the daemon does its own recording.
            .env("MAB_QUIET", "1")
            .env_remove("MAB_LEDGER")
            .env_remove("MAB_MONITOR");
        // Point the child's flight recorder at the per-job crash directory
        // so a panic or fatal signal leaves an attributable report.
        match crash_dir {
            Some(dir) => {
                command.env("MAB_CRASH_DIR", dir);
            }
            None => {
                command.env_remove("MAB_CRASH_DIR");
            }
        }
        let mut child = command
            .spawn()
            .map_err(|e| format!("spawn {} failed: {e}", program.display()))?;

        // Drain stdout on a helper thread so a report larger than the pipe
        // buffer cannot deadlock against our wait loop.
        let mut stdout = child.stdout.take().expect("stdout was piped");
        let reader = std::thread::spawn(move || {
            let mut out = String::new();
            stdout.read_to_string(&mut out).map(|_| out)
        });

        let status = loop {
            if cancel.is_cancelled() {
                let _ = child.kill();
                let _ = child.wait();
                let _ = reader.join();
                return Err("cancelled".to_string());
            }
            match child.try_wait() {
                Ok(Some(status)) => break status,
                Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                Err(e) => {
                    let _ = child.kill();
                    let _ = reader.join();
                    return Err(format!("wait on {} failed: {e}", spec.experiment));
                }
            }
        };
        let report = reader
            .join()
            .map_err(|_| "stdout reader panicked".to_string())?
            .map_err(|e| format!("reading {} stdout failed: {e}", spec.experiment))?;
        if !status.success() {
            return Err(format!("{} exited with {status}", spec.experiment));
        }
        Ok(report)
    }
}
