//! Job model and sweep-spec parsing for the serve API.
//!
//! A *job* is one client submission: an experiment plus a config grid
//! (lists of seeds / instruction budgets / mix caps, crossed) that expands
//! to one [`Arm`] per grid point. Each arm is an independent, fully
//! resolved [`RunSpec`] with its own content digest — the unit the
//! scheduler queues, the cache stores, and the ledger records.

use mab_experiments::spec::{self, RunSpec};
use mab_ledger::json::{self, JsonValue};

/// Scheduling state of one arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArmStatus {
    /// Waiting in its client's queue.
    Queued,
    /// Executing (or attached to an identical in-flight execution).
    Running,
    /// Finished; the artifact is in the cache.
    Done,
    /// Execution failed; see [`Arm::error`].
    Failed,
}

impl ArmStatus {
    /// Lower-case wire name.
    pub fn name(self) -> &'static str {
        match self {
            ArmStatus::Queued => "queued",
            ArmStatus::Running => "running",
            ArmStatus::Done => "done",
            ArmStatus::Failed => "failed",
        }
    }

    /// True for states no transition leaves.
    pub fn is_terminal(self) -> bool {
        matches!(self, ArmStatus::Done | ArmStatus::Failed)
    }
}

/// One grid point of a job: a resolved spec plus its scheduling state.
#[derive(Debug, Clone)]
pub struct Arm {
    /// The fully resolved run identity.
    pub spec: RunSpec,
    /// Content digest (cache key / ledger address) under the serving code
    /// version.
    pub digest: String,
    /// Scheduling state.
    pub status: ArmStatus,
    /// True when the result came from the cache or an in-flight twin
    /// rather than a fresh execution.
    pub cache_hit: bool,
    /// Wall time until the arm completed, in milliseconds.
    pub wall_ms: f64,
    /// Failure message, when [`ArmStatus::Failed`].
    pub error: Option<String>,
    /// Path of the `.mabcrash` flight-recorder report the failed execution
    /// left behind, when one was found (see `GET /crashes` and
    /// `mab-inspect postmortem`).
    pub crash: Option<String>,
}

/// One client submission.
#[derive(Debug)]
pub struct Job {
    /// Server-assigned id.
    pub id: u64,
    /// Client identity (fair-scheduling key).
    pub client: String,
    /// The expanded grid.
    pub arms: Vec<Arm>,
    /// Submission time (seconds since the Unix epoch).
    pub submitted_unix: u64,
    /// Per-job progress stream (`GET /jobs/:id/events`).
    pub events: std::sync::Arc<mab_monitor::EventRing>,
}

impl Job {
    /// Aggregate state over the arms: `failed` dominates, then `running`
    /// while anything is unfinished, `done` only when every arm is done.
    pub fn status(&self) -> &'static str {
        if self.arms.iter().any(|a| a.status == ArmStatus::Failed) {
            "failed"
        } else if self.arms.iter().all(|a| a.status == ArmStatus::Done) {
            "done"
        } else if self.arms.iter().all(|a| a.status == ArmStatus::Queued) {
            "queued"
        } else {
            "running"
        }
    }

    /// Arms in a terminal state.
    pub fn finished(&self) -> usize {
        self.arms.iter().filter(|a| a.status.is_terminal()).count()
    }

    /// Arms that were served from cache (on-disk or in-flight dedup).
    pub fn cache_hits(&self) -> usize {
        self.arms
            .iter()
            .filter(|a| a.status.is_terminal() && a.cache_hit)
            .count()
    }

    /// Full status document for `GET /jobs/:id`.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"id\":{},\"client\":\"{}\",\"experiment\":\"{}\",\"status\":\"{}\",\
             \"submitted_unix\":{},\"arms_total\":{},\"arms_finished\":{},\"cache_hits\":{},\"arms\":[",
            self.id,
            json::escape(&self.client),
            json::escape(
                self.arms
                    .first()
                    .map(|a| a.spec.experiment.as_str())
                    .unwrap_or("")
            ),
            self.status(),
            self.submitted_unix,
            self.arms.len(),
            self.finished(),
            self.cache_hits(),
        );
        for (i, arm) in self.arms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&arm_json(i, arm));
        }
        out.push_str("]}");
        out
    }

    /// One-line summary for `GET /queue`.
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"id\":{},\"client\":\"{}\",\"experiment\":\"{}\",\"status\":\"{}\",\
             \"arms_total\":{},\"arms_finished\":{},\"cache_hits\":{}}}",
            self.id,
            json::escape(&self.client),
            json::escape(
                self.arms
                    .first()
                    .map(|a| a.spec.experiment.as_str())
                    .unwrap_or("")
            ),
            self.status(),
            self.arms.len(),
            self.finished(),
            self.cache_hits(),
        )
    }
}

/// Renders one arm for the job document.
pub fn arm_json(index: usize, arm: &Arm) -> String {
    let mut out = format!(
        "{{\"index\":{index},\"digest\":\"{}\",\"status\":\"{}\",\"cache_hit\":{},\
         \"instructions\":{},\"seed\":{},\"mixes\":{},\"quick\":{},\"wall_ms\":{}",
        arm.digest,
        arm.status.name(),
        arm.cache_hit,
        arm.spec.instructions,
        arm.spec.seed,
        arm.spec.mixes,
        arm.spec.quick,
        json::fmt_f64(arm.wall_ms),
    );
    if let Some(error) = &arm.error {
        out.push_str(&format!(",\"error\":\"{}\"", json::escape(error)));
    }
    if let Some(crash) = &arm.crash {
        out.push_str(&format!(",\"crash\":\"{}\"", json::escape(crash)));
    }
    out.push('}');
    out
}

/// A parsed, expanded submission: the client id plus one resolved spec per
/// grid point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Client identity for fair scheduling (`"anon"` when absent).
    pub client: String,
    /// One resolved spec per grid point, in grid order
    /// (instructions × mixes × seeds, seeds fastest).
    pub specs: Vec<RunSpec>,
}

/// Parses a `POST /jobs` body:
///
/// ```json
/// {"experiment":"fig08_singlecore","client":"agent-1",
///  "seeds":[1,2,3],"instructions":200000,"mixes":[4,8],"quick":true}
/// ```
///
/// `experiment` is required and must be registered; `client` defaults to
/// `anon`; `seeds` (scalar or list) defaults to `[42]`; `instructions` and
/// `mixes` (scalar or list) default to the experiment's registry defaults
/// (scaled by `quick` when set), exactly as the binary CLI resolves them.
///
/// # Errors
///
/// Returns a message suitable for a `400` response.
pub fn parse_job(body: &str) -> Result<JobSpec, String> {
    let doc = json::parse(body.trim()).map_err(|e| format!("invalid JSON body: {e}"))?;
    let experiment = doc
        .get("experiment")
        .and_then(JsonValue::as_str)
        .ok_or("missing required string field 'experiment'")?;
    let def = spec::find(experiment)
        .ok_or_else(|| format!("unknown experiment {experiment:?}; see /experiments"))?;
    let client = doc
        .get("client")
        .and_then(JsonValue::as_str)
        .unwrap_or("anon")
        .to_string();
    let quick = doc
        .get("quick")
        .and_then(JsonValue::as_bool)
        .unwrap_or(false);
    let seeds = u64_list(&doc, "seeds")?.unwrap_or_else(|| vec![42]);
    let instructions = u64_list(&doc, "instructions")?;
    let mixes = u64_list(&doc, "mixes")?;
    let instructions: Vec<Option<u64>> = match instructions {
        Some(list) => list.into_iter().map(Some).collect(),
        None => vec![None],
    };
    let mixes: Vec<Option<usize>> = match mixes {
        Some(list) => list.into_iter().map(|m| Some(m as usize)).collect(),
        None => vec![None],
    };
    let mut specs = Vec::new();
    for &i in &instructions {
        for &m in &mixes {
            for &seed in &seeds {
                specs.push(RunSpec::resolve(def, i, seed, m, quick));
            }
        }
    }
    if specs.is_empty() {
        return Err("empty config grid".to_string());
    }
    Ok(JobSpec { client, specs })
}

/// Reads `key` as either a scalar u64 or a list of them.
fn u64_list(doc: &JsonValue, key: &str) -> Result<Option<Vec<u64>>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(value) => {
            if let Some(n) = value.as_u64() {
                return Ok(Some(vec![n]));
            }
            let arr = value
                .as_arr()
                .ok_or_else(|| format!("field '{key}' must be a number or a list of numbers"))?;
            let mut out = Vec::with_capacity(arr.len());
            for item in arr {
                out.push(
                    item.as_u64()
                        .ok_or_else(|| format!("field '{key}' has a non-integer element"))?,
                );
            }
            if out.is_empty() {
                return Err(format!("field '{key}' must not be an empty list"));
            }
            Ok(Some(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_submission_uses_defaults() {
        let job = parse_job("{\"experiment\":\"fig08_singlecore\"}").unwrap();
        assert_eq!(job.client, "anon");
        assert_eq!(job.specs.len(), 1);
        let spec = &job.specs[0];
        assert_eq!(spec.experiment, "fig08_singlecore");
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.instructions, 2_000_000);
        assert!(!spec.quick);
    }

    #[test]
    fn grid_expands_as_a_cross_product() {
        let job = parse_job(
            "{\"experiment\":\"fig13_smt_scurve\",\"client\":\"a\",\
             \"seeds\":[1,2],\"instructions\":[1000,2000],\"mixes\":4,\"quick\":true}",
        )
        .unwrap();
        assert_eq!(job.specs.len(), 4);
        assert!(job.specs.iter().all(|s| s.mixes == 4 && s.quick));
        assert_eq!(job.specs[0].instructions, 1000);
        assert_eq!(job.specs[0].seed, 1);
        assert_eq!(job.specs[1].seed, 2);
        assert_eq!(job.specs[2].instructions, 2000);
        // Every grid point has a distinct digest.
        let mut digests: Vec<String> = job.specs.iter().map(|s| s.digest("c")).collect();
        digests.sort();
        digests.dedup();
        assert_eq!(digests.len(), 4);
    }

    #[test]
    fn quick_applies_registry_preset() {
        let job = parse_job("{\"experiment\":\"fig08_singlecore\",\"quick\":true}").unwrap();
        assert_eq!(job.specs[0].instructions, 200_000);
        assert!(job.specs[0].quick);
    }

    #[test]
    fn bad_submissions_are_rejected() {
        assert!(parse_job("not json").is_err());
        assert!(parse_job("{}").is_err());
        assert!(parse_job("{\"experiment\":\"nope\"}").is_err());
        assert!(parse_job("{\"experiment\":\"fig08_singlecore\",\"seeds\":[]}").is_err());
        assert!(parse_job("{\"experiment\":\"fig08_singlecore\",\"seeds\":\"x\"}").is_err());
    }

    #[test]
    fn job_status_aggregates_arms() {
        let spec = RunSpec::resolve(spec::find("fig08_singlecore").unwrap(), None, 1, None, true);
        let arm = |status, cache_hit| Arm {
            spec: spec.clone(),
            digest: spec.digest("c"),
            status,
            cache_hit,
            wall_ms: 1.0,
            error: None,
            crash: None,
        };
        let mut job = Job {
            id: 3,
            client: "a".to_string(),
            arms: vec![arm(ArmStatus::Done, true), arm(ArmStatus::Queued, false)],
            submitted_unix: 0,
            events: std::sync::Arc::new(mab_monitor::EventRing::default()),
        };
        assert_eq!(job.status(), "running");
        assert_eq!(job.finished(), 1);
        assert_eq!(job.cache_hits(), 1);
        job.arms[1].status = ArmStatus::Done;
        assert_eq!(job.status(), "done");
        let doc = mab_ledger::json::parse(&job.to_json()).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("done"));
        assert_eq!(doc.get("cache_hits").unwrap().as_u64(), Some(1));
        job.arms[0].status = ArmStatus::Failed;
        assert_eq!(job.status(), "failed");
    }
}
