//! The daemon's core: job table, fair scheduler, dispatcher and the
//! cache/ledger tie-ins.
//!
//! # Scheduling
//!
//! Every submitted job expands to arms queued under the submitting
//! client's id. A single dispatcher thread picks arms **round-robin
//! across clients** and hands each one to the shared
//! [`mab_runner::WorkerPool`]; because the pool's `submit` blocks until a
//! worker is idle (the lease discipline), the round-robin choice is made
//! exactly when capacity frees up — one client's thousand-arm sweep
//! cannot starve another client's two-arm probe. Admission is bounded:
//! when the number of admitted-but-unfinished arms would exceed
//! `queue_cap`, submission fails with [`SubmitError::QueueFull`] (HTTP
//! `429`).
//!
//! # Memoization
//!
//! Before executing, the dispatcher consults the content-addressed
//! [`Cache`] (same digest ⇒ byte-identical output, by the runner's
//! determinism discipline) and the **in-flight table**: an arm whose
//! digest is already executing subscribes to that execution instead of
//! starting its own, so two clients submitting the same sweep
//! concurrently share one run. Every completion is recorded in the run
//! ledger with the `served`/`cache_hit` circumstance fields.
//!
//! # Shutdown
//!
//! [`ServeState::shutdown`] stops the dispatcher, drains in-flight arms
//! (their results land in the cache), and persists the job table to
//! `jobs.json` under the cache root; the next start resumes it, and
//! already-completed arms come back as instant cache hits.

use crate::cache::Cache;
use crate::exec::Executor;
use crate::job::{Arm, ArmStatus, Job, JobSpec};
use mab_experiments::spec::RunSpec;
use mab_ledger::json::{self, JsonValue};
use mab_ledger::{Append, Ledger};
use mab_monitor::http::HttpStats;
use mab_monitor::EventRing;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing arms.
    pub workers: usize,
    /// Maximum admitted-but-unfinished arms across all clients; beyond it
    /// submissions get `429`.
    pub queue_cap: usize,
    /// Root of the content-addressed result cache.
    pub cache_dir: PathBuf,
    /// Run-ledger directory for `served`/`cache_hit` records (`None`
    /// disables recording).
    pub ledger_dir: Option<PathBuf>,
    /// Suppress stderr progress lines.
    pub quiet: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: mab_runner::available_jobs(),
            queue_cap: 256,
            cache_dir: PathBuf::from("cache/serve"),
            ledger_dir: None,
            quiet: false,
        }
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The daemon is shutting down (HTTP `503`).
    Draining,
    /// Admitting the job would exceed `queue_cap` (HTTP `429`).
    QueueFull,
}

/// Why an artifact could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// No such job (HTTP `404`).
    NoSuchJob,
    /// No such arm index (HTTP `404`).
    NoSuchArm,
    /// The job (or requested arm) has not finished; carries the current
    /// status (HTTP `409`).
    NotFinished(String),
    /// The cache entry vanished or failed its CRC (HTTP `503` — resubmit
    /// to recompute).
    CacheMiss(String),
}

#[derive(Default)]
struct JobTable {
    jobs: BTreeMap<u64, Job>,
    next_id: u64,
}

#[derive(Default)]
struct Sched {
    /// Per-client FIFO queues, round-robin serviced.
    clients: Vec<(String, VecDeque<(u64, usize)>)>,
    /// Round-robin cursor into `clients`.
    rr: usize,
    /// Arms admitted and not yet terminal (the `queue_cap` measure).
    open_arms: usize,
    /// Digest → arms subscribed to an execution already in flight. The
    /// executing arm itself is not listed.
    inflight: HashMap<String, Vec<(u64, usize)>>,
    /// Dispatcher stop flag.
    stop: bool,
}

/// Shared daemon state: everything the API surface and the dispatcher
/// touch.
pub struct ServeState {
    /// Static configuration.
    pub config: ServeConfig,
    /// Code version all digests are computed under.
    pub code: String,
    /// The content-addressed result store.
    pub cache: Cache,
    executor: Arc<dyn Executor>,
    jobs: Mutex<JobTable>,
    sched: Mutex<Sched>,
    sched_cv: Condvar,
    pool: mab_runner::WorkerPool,
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
    draining: AtomicBool,
    /// Global progress stream (`GET /events`).
    pub events: EventRing,
    /// Connected SSE clients (all streams).
    pub sse_clients: AtomicU64,
    /// Events dropped across slow SSE clients.
    pub sse_dropped: AtomicU64,
    /// HTTP server-core counters.
    pub http: Arc<HttpStats>,
    /// Arms executed by this daemon instance.
    pub arms_executed: AtomicU64,
    /// Arms served from the cache or an in-flight twin.
    pub arms_cached: AtomicU64,
    /// Submissions rejected with `429` at the queue cap.
    pub rejected_submissions: AtomicU64,
    /// Crash reports attributed to failed arms (`GET /crashes`).
    pub crashes: AtomicU64,
}

impl std::fmt::Debug for ServeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeState")
            .field("config", &self.config)
            .field("code", &self.code)
            .finish_non_exhaustive()
    }
}

impl ServeState {
    /// Opens the cache, restores any persisted job table, and starts the
    /// dispatcher over a fresh worker pool.
    ///
    /// # Errors
    ///
    /// Propagates cache-directory failures.
    pub fn start(
        config: ServeConfig,
        executor: Arc<dyn Executor>,
    ) -> std::io::Result<Arc<ServeState>> {
        let cache = Cache::open(&config.cache_dir)?;
        let workers = config.workers.max(1);
        let state = Arc::new(ServeState {
            code: mab_ledger::code_version(),
            cache,
            executor,
            jobs: Mutex::new(JobTable::default()),
            sched: Mutex::new(Sched::default()),
            sched_cv: Condvar::new(),
            pool: mab_runner::WorkerPool::new(workers),
            dispatcher: Mutex::new(None),
            draining: AtomicBool::new(false),
            events: EventRing::default(),
            sse_clients: AtomicU64::new(0),
            sse_dropped: AtomicU64::new(0),
            http: Arc::new(HttpStats::default()),
            arms_executed: AtomicU64::new(0),
            arms_cached: AtomicU64::new(0),
            rejected_submissions: AtomicU64::new(0),
            crashes: AtomicU64::new(0),
            config,
        });
        let resumed = state.resume();
        if resumed > 0 {
            state.progress(&format!("resumed {resumed} unfinished arms from jobs.json"));
        }
        let dispatcher_state = Arc::clone(&state);
        *state.dispatcher.lock().unwrap() = Some(
            std::thread::Builder::new()
                .name("mab-serve-dispatch".to_string())
                .spawn(move || dispatcher_loop(&dispatcher_state))?,
        );
        Ok(state)
    }

    fn progress(&self, message: &str) {
        if !self.config.quiet {
            eprintln!("[mab-serve] {message}");
        }
    }

    /// True once shutdown has begun (new submissions get `503`).
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Root directory for crash reports: `<cache_dir>/crashes`. Only
    /// created when something actually crashes.
    pub fn crash_root(&self) -> PathBuf {
        self.config.cache_dir.join("crashes")
    }

    /// Per-job crash directory. Executed children get it as
    /// `MAB_CRASH_DIR`, so a dying arm's flight-recorder report lands
    /// where the daemon can attribute it back to the owning job.
    pub fn job_crash_dir(&self, job_id: u64) -> PathBuf {
        self.crash_root().join(format!("job-{job_id}"))
    }

    /// Admits a job: expands the grid, checks capacity, queues the arms
    /// under the client's id and returns the job id.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Draining`] during shutdown, [`SubmitError::QueueFull`]
    /// past `queue_cap`.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        if self.draining() {
            return Err(SubmitError::Draining);
        }
        let arms: Vec<Arm> = spec
            .specs
            .iter()
            .map(|s| Arm {
                digest: s.digest(&self.code),
                spec: s.clone(),
                status: ArmStatus::Queued,
                cache_hit: false,
                wall_ms: 0.0,
                error: None,
                crash: None,
            })
            .collect();
        let n = arms.len();
        // Reserve capacity atomically; released per-arm at completion.
        {
            let mut sched = self.sched.lock().unwrap();
            if sched.stop {
                return Err(SubmitError::Draining);
            }
            if sched.open_arms + n > self.config.queue_cap {
                self.rejected_submissions.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::QueueFull);
            }
            sched.open_arms += n;
        }
        let id = {
            let mut jobs = self.jobs.lock().unwrap();
            let id = jobs.next_id;
            jobs.next_id += 1;
            jobs.jobs.insert(
                id,
                Job {
                    id,
                    client: spec.client.clone(),
                    arms,
                    submitted_unix: unix_now(),
                    events: Arc::new(EventRing::default()),
                },
            );
            id
        };
        self.enqueue(&spec.client, (0..n).map(|i| (id, i)));
        mab_telemetry::blackbox::job_event(id, "submitted", &format!("{n} arms"));
        self.events.publish(
            "job_submitted",
            format!(
                "{{\"job\":{id},\"client\":\"{}\",\"arms\":{n}}}",
                json::escape(&spec.client)
            ),
        );
        Ok(id)
    }

    fn enqueue(&self, client: &str, items: impl Iterator<Item = (u64, usize)>) {
        let mut sched = self.sched.lock().unwrap();
        let queue = match sched.clients.iter_mut().find(|(name, _)| name == client) {
            Some((_, queue)) => queue,
            None => {
                sched.clients.push((client.to_string(), VecDeque::new()));
                &mut sched.clients.last_mut().unwrap().1
            }
        };
        queue.extend(items);
        drop(sched);
        self.sched_cv.notify_all();
    }

    /// Renders the `GET /jobs/:id` document.
    pub fn job_json(&self, id: u64) -> Option<String> {
        self.jobs.lock().unwrap().jobs.get(&id).map(Job::to_json)
    }

    /// The per-job event ring for `GET /jobs/:id/events`.
    pub fn job_events(&self, id: u64) -> Option<Arc<EventRing>> {
        self.jobs
            .lock()
            .unwrap()
            .jobs
            .get(&id)
            .map(|job| Arc::clone(&job.events))
    }

    /// Fetches a finished job's artifact: the exact stdout of the single
    /// arm (`arm` = `None` on one-arm jobs), one selected arm, or all arm
    /// reports concatenated with `=== arm N <digest> ===` separators.
    ///
    /// # Errors
    ///
    /// See [`ArtifactError`].
    pub fn artifact(&self, id: u64, arm: Option<usize>) -> Result<String, ArtifactError> {
        let targets: Vec<(usize, String)> = {
            let jobs = self.jobs.lock().unwrap();
            let job = jobs.jobs.get(&id).ok_or(ArtifactError::NoSuchJob)?;
            match arm {
                Some(i) => {
                    let arm = job.arms.get(i).ok_or(ArtifactError::NoSuchArm)?;
                    if arm.status != ArmStatus::Done {
                        return Err(ArtifactError::NotFinished(arm.status.name().to_string()));
                    }
                    vec![(i, arm.digest.clone())]
                }
                None => {
                    if job.status() != "done" {
                        return Err(ArtifactError::NotFinished(job.status().to_string()));
                    }
                    job.arms
                        .iter()
                        .enumerate()
                        .map(|(i, a)| (i, a.digest.clone()))
                        .collect()
                }
            }
        };
        let mut out = String::new();
        let single = targets.len() == 1;
        for (i, digest) in targets {
            let report = self
                .cache
                .lookup(&digest)
                .ok_or_else(|| ArtifactError::CacheMiss(digest.clone()))?;
            if single {
                return Ok(report);
            }
            out.push_str(&format!("=== arm {i} {digest} ===\n"));
            out.push_str(&report);
        }
        Ok(out)
    }

    /// Renders the `GET /queue` global view.
    pub fn queue_json(&self) -> String {
        let (queued_by_client, open_arms, inflight) = {
            let sched = self.sched.lock().unwrap();
            let by_client: Vec<(String, usize)> = sched
                .clients
                .iter()
                .filter(|(_, q)| !q.is_empty())
                .map(|(name, q)| (name.clone(), q.len()))
                .collect();
            (by_client, sched.open_arms, sched.inflight.len())
        };
        let mut out = format!(
            "{{\"code\":\"{}\",\"workers\":{},\"queue_cap\":{},\"draining\":{},\
             \"open_arms\":{open_arms},\"inflight\":{inflight},\
             \"arms_executed\":{},\"arms_cached\":{},\"crashes\":{},\
             \"rejected_submissions\":{},\"cache_entries\":{},\"queued\":{{",
            json::escape(&self.code),
            self.pool.workers(),
            self.config.queue_cap,
            self.draining(),
            self.arms_executed.load(Ordering::Relaxed),
            self.arms_cached.load(Ordering::Relaxed),
            self.crashes.load(Ordering::Relaxed),
            self.rejected_submissions.load(Ordering::Relaxed),
            self.cache.entries(),
        );
        for (i, (client, n)) in queued_by_client.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{n}", json::escape(client)));
        }
        out.push_str("},\"jobs\":[");
        let jobs = self.jobs.lock().unwrap();
        for (i, job) in jobs.jobs.values().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&job.summary_json());
        }
        out.push_str("]}");
        out
    }

    /// Renders the `GET /crashes` listing: every `.mabcrash` report under
    /// the crash root, newest first, attributed to its owning job (the
    /// `job-<id>` subdirectory it landed in; `null` for daemon-level
    /// reports in the root itself).
    pub fn crashes_json(&self) -> String {
        let root = self.crash_root();
        // (modified_unix, job id, path, bytes)
        let mut rows: Vec<(u64, Option<u64>, String, u64)> = Vec::new();
        let scan = |dir: &PathBuf, job: Option<u64>, rows: &mut Vec<_>| {
            for path in crash_reports_in(dir) {
                let meta = std::fs::metadata(&path).ok();
                let bytes = meta.as_ref().map_or(0, std::fs::Metadata::len);
                let modified = meta
                    .and_then(|m| m.modified().ok())
                    .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                    .map_or(0, |d| d.as_secs());
                rows.push((modified, job, path, bytes));
            }
        };
        scan(&root, None, &mut rows);
        if let Ok(entries) = std::fs::read_dir(&root) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                if let Some(id) = name
                    .to_str()
                    .and_then(|n| n.strip_prefix("job-"))
                    .and_then(|n| n.parse::<u64>().ok())
                {
                    scan(&entry.path(), Some(id), &mut rows);
                }
            }
        }
        rows.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.2.cmp(&b.2)));
        let mut out = format!(
            "{{\"crash_dir\":\"{}\",\"count\":{},\"crashes\":[",
            json::escape(&root.display().to_string()),
            rows.len(),
        );
        for (i, (modified, job, path, bytes)) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"job\":{},\"report\":\"{}\",\"bytes\":{bytes},\"modified_unix\":{modified}}}",
                job.map_or("null".to_string(), |id| id.to_string()),
                json::escape(path),
            ));
        }
        out.push_str("]}");
        out
    }

    /// Renders the Prometheus exposition page for `GET /metrics`, using
    /// the monitor's writer so both planes share one set of conventions.
    pub fn metrics_page(&self) -> String {
        use mab_monitor::metrics::{counter, gauge};
        let (queued, open_arms, inflight) = {
            let sched = self.sched.lock().unwrap();
            let queued: usize = sched.clients.iter().map(|(_, q)| q.len()).sum();
            (queued, sched.open_arms, sched.inflight.len())
        };
        let jobs = self.jobs.lock().unwrap().jobs.len();
        let mut out = String::with_capacity(2048);
        gauge(
            &mut out,
            "mab_serve_workers",
            "Executor worker threads.",
            self.pool.workers() as f64,
        );
        gauge(
            &mut out,
            "mab_serve_queue_cap",
            "Maximum admitted-but-unfinished arms.",
            self.config.queue_cap as f64,
        );
        gauge(
            &mut out,
            "mab_serve_queue_depth",
            "Arms waiting in client queues.",
            queued as f64,
        );
        gauge(
            &mut out,
            "mab_serve_open_arms",
            "Admitted arms not yet terminal.",
            open_arms as f64,
        );
        gauge(
            &mut out,
            "mab_serve_inflight",
            "Distinct digests currently executing.",
            inflight as f64,
        );
        gauge(
            &mut out,
            "mab_serve_jobs",
            "Jobs in the job table.",
            jobs as f64,
        );
        gauge(
            &mut out,
            "mab_serve_draining",
            "1 once shutdown has begun.",
            if self.draining() { 1.0 } else { 0.0 },
        );
        counter(
            &mut out,
            "mab_serve_cache_hits_total",
            "Arms served from the cache or an in-flight twin.",
            self.arms_cached.load(Ordering::Relaxed) as f64,
        );
        counter(
            &mut out,
            "mab_serve_cache_misses_total",
            "Arms executed because no cached result existed.",
            self.arms_executed.load(Ordering::Relaxed) as f64,
        );
        gauge(
            &mut out,
            "mab_serve_cache_entries",
            "Entries in the content-addressed cache.",
            self.cache.entries() as f64,
        );
        counter(
            &mut out,
            "mab_serve_rejected_submissions_total",
            "Submissions rejected with 429 at the queue cap.",
            self.rejected_submissions.load(Ordering::Relaxed) as f64,
        );
        counter(
            &mut out,
            "mab_serve_crashes_total",
            "Crash reports attributed to failed arms.",
            self.crashes.load(Ordering::Relaxed) as f64,
        );
        gauge(
            &mut out,
            "mab_serve_sse_clients",
            "Currently connected SSE clients.",
            self.sse_clients.load(Ordering::Relaxed) as f64,
        );
        counter(
            &mut out,
            "mab_serve_sse_dropped_total",
            "Events dropped across slow SSE clients.",
            self.sse_dropped.load(Ordering::Relaxed) as f64,
        );
        out
    }

    /// Graceful shutdown: stop dispatching, drain in-flight arms into the
    /// cache, persist the job table for resume. Idempotent.
    pub fn shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
        {
            let mut sched = self.sched.lock().unwrap();
            sched.stop = true;
        }
        self.sched_cv.notify_all();
        if let Some(handle) = self.dispatcher.lock().unwrap().take() {
            let _ = handle.join();
        }
        self.pool.drain();
        match self.persist() {
            Ok(unfinished) => {
                if unfinished > 0 {
                    self.progress(&format!(
                        "persisted {unfinished} unfinished arms to jobs.json for resume"
                    ));
                }
            }
            Err(e) => self.progress(&format!("persisting job table failed: {e}")),
        }
    }

    /// Writes the job table to `jobs.json` under the cache root (atomic
    /// tmp+rename); returns the number of unfinished arms persisted.
    fn persist(&self) -> std::io::Result<usize> {
        let jobs = self.jobs.lock().unwrap();
        let mut unfinished = 0;
        let mut out = format!("{{\"next_id\":{},\"jobs\":[", jobs.next_id);
        for (i, job) in jobs.jobs.values().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"client\":\"{}\",\"submitted_unix\":{},\"arms\":[",
                job.id,
                json::escape(&job.client),
                job.submitted_unix
            ));
            for (j, arm) in job.arms.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                if !arm.status.is_terminal() {
                    unfinished += 1;
                }
                out.push_str(&format!(
                    "{{\"experiment\":\"{}\",\"instructions\":{},\"seed\":{},\"mixes\":{},\
                     \"quick\":{},\"status\":\"{}\",\"cache_hit\":{},\"wall_ms\":{}",
                    json::escape(&arm.spec.experiment),
                    arm.spec.instructions,
                    arm.spec.seed,
                    arm.spec.mixes,
                    arm.spec.quick,
                    arm.status.name(),
                    arm.cache_hit,
                    json::fmt_f64(arm.wall_ms),
                ));
                if let Some(error) = &arm.error {
                    out.push_str(&format!(",\"error\":\"{}\"", json::escape(error)));
                }
                if let Some(crash) = &arm.crash {
                    out.push_str(&format!(",\"crash\":\"{}\"", json::escape(crash)));
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}\n");
        let path = self.cache.root().join("jobs.json");
        let tmp = self.cache.root().join(".jobs.json.tmp");
        std::fs::write(&tmp, out)?;
        std::fs::rename(&tmp, &path)?;
        Ok(unfinished)
    }

    /// Restores `jobs.json` if present: terminal arms come back as-is,
    /// unfinished arms re-enter their client queues. Returns the number of
    /// re-enqueued arms.
    fn resume(&self) -> usize {
        let path = self.cache.root().join("jobs.json");
        let Ok(text) = std::fs::read_to_string(&path) else {
            return 0;
        };
        let Ok(doc) = json::parse(text.trim()) else {
            self.progress("jobs.json is unreadable; starting fresh");
            let _ = std::fs::remove_file(&path);
            return 0;
        };
        let mut requeued = 0;
        let mut pending: Vec<(String, Vec<(u64, usize)>)> = Vec::new();
        {
            let mut jobs = self.jobs.lock().unwrap();
            jobs.next_id = doc.get("next_id").and_then(JsonValue::as_u64).unwrap_or(0);
            for job_doc in doc.get("jobs").and_then(JsonValue::as_arr).unwrap_or(&[]) {
                let Some(id) = job_doc.get("id").and_then(JsonValue::as_u64) else {
                    continue;
                };
                let client = job_doc
                    .get("client")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("anon")
                    .to_string();
                let mut arms = Vec::new();
                let mut requeue = Vec::new();
                for arm_doc in job_doc
                    .get("arms")
                    .and_then(JsonValue::as_arr)
                    .unwrap_or(&[])
                {
                    let Some(experiment) = arm_doc.get("experiment").and_then(JsonValue::as_str)
                    else {
                        continue;
                    };
                    let spec = RunSpec {
                        experiment: experiment.to_string(),
                        instructions: arm_doc
                            .get("instructions")
                            .and_then(JsonValue::as_u64)
                            .unwrap_or(0),
                        seed: arm_doc.get("seed").and_then(JsonValue::as_u64).unwrap_or(0),
                        mixes: arm_doc
                            .get("mixes")
                            .and_then(JsonValue::as_u64)
                            .unwrap_or(0) as usize,
                        quick: arm_doc
                            .get("quick")
                            .and_then(JsonValue::as_bool)
                            .unwrap_or(false),
                    };
                    let status = match arm_doc.get("status").and_then(JsonValue::as_str) {
                        Some("done") => ArmStatus::Done,
                        Some("failed") => ArmStatus::Failed,
                        _ => ArmStatus::Queued,
                    };
                    if status == ArmStatus::Queued {
                        requeue.push((id, arms.len()));
                    }
                    arms.push(Arm {
                        digest: spec.digest(&self.code),
                        spec,
                        status,
                        cache_hit: arm_doc
                            .get("cache_hit")
                            .and_then(JsonValue::as_bool)
                            .unwrap_or(false),
                        wall_ms: arm_doc
                            .get("wall_ms")
                            .and_then(JsonValue::as_f64)
                            .unwrap_or(0.0),
                        error: arm_doc
                            .get("error")
                            .and_then(JsonValue::as_str)
                            .map(str::to_string),
                        crash: arm_doc
                            .get("crash")
                            .and_then(JsonValue::as_str)
                            .map(str::to_string),
                    });
                }
                if arms.is_empty() {
                    continue;
                }
                requeued += requeue.len();
                if !requeue.is_empty() {
                    pending.push((client.clone(), requeue));
                }
                jobs.jobs.insert(
                    id,
                    Job {
                        id,
                        client,
                        arms,
                        submitted_unix: job_doc
                            .get("submitted_unix")
                            .and_then(JsonValue::as_u64)
                            .unwrap_or(0),
                        events: Arc::new(EventRing::default()),
                    },
                );
            }
        }
        {
            let mut sched = self.sched.lock().unwrap();
            sched.open_arms += requeued;
        }
        for (client, items) in pending {
            self.enqueue(&client, items.into_iter());
        }
        let _ = std::fs::remove_file(&path);
        requeued
    }

    /// Records one completed arm in the run ledger (when configured) with
    /// the `served`/`cache_hit` circumstance fields. Identical resubmits
    /// dedup against the existing record, so the ledger stays one line per
    /// identity.
    fn record_arm(&self, spec: &RunSpec, label: &str, cache_hit: bool) {
        let Some(dir) = &self.config.ledger_dir else {
            return;
        };
        let mut record = spec.identity_record(&self.code);
        record.started_unix = unix_now();
        record.served = Some(label.to_string());
        record.cache_hit = cache_hit;
        match Ledger::open(dir).and_then(|ledger| ledger.record(&record)) {
            Ok(Append::Recorded(_)) | Ok(Append::Deduplicated(_)) => {}
            Err(e) => self.progress(&format!("ledger append failed: {e}")),
        }
    }

    fn mark_running(&self, job_id: u64, arm_idx: usize) {
        let (digest, job_events) = {
            let mut jobs = self.jobs.lock().unwrap();
            let Some(job) = jobs.jobs.get_mut(&job_id) else {
                return;
            };
            job.arms[arm_idx].status = ArmStatus::Running;
            (job.arms[arm_idx].digest.clone(), Arc::clone(&job.events))
        };
        mab_telemetry::blackbox::job_event(job_id, "arm_start", &digest);
        let payload = format!("{{\"job\":{job_id},\"index\":{arm_idx},\"digest\":\"{digest}\"}}");
        job_events.publish("arm_start", payload.clone());
        self.events.publish("arm_start", payload);
    }

    fn complete_arm(
        &self,
        job_id: u64,
        arm_idx: usize,
        cache_hit: bool,
        wall_ms: f64,
        error: Option<String>,
    ) {
        let failed = error.is_some();
        // A failed execution may have left a flight-recorder report in the
        // job's crash directory (newest first); claim the first one no
        // other arm of this job owns yet.
        let candidates = if failed {
            crash_reports_in(&self.job_crash_dir(job_id))
        } else {
            Vec::new()
        };
        let completion = {
            let mut jobs = self.jobs.lock().unwrap();
            let Some(job) = jobs.jobs.get_mut(&job_id) else {
                return;
            };
            let crash = candidates
                .into_iter()
                .find(|p| !job.arms.iter().any(|a| a.crash.as_deref() == Some(p.as_str())));
            let arm = &mut job.arms[arm_idx];
            arm.status = if failed {
                ArmStatus::Failed
            } else {
                ArmStatus::Done
            };
            arm.cache_hit = cache_hit;
            arm.wall_ms = wall_ms;
            arm.error = error;
            arm.crash = crash.clone();
            let spec = arm.spec.clone();
            let digest = arm.digest.clone();
            let label = format!("{}:{}", job.client, job.id);
            let finished = job
                .arms
                .iter()
                .all(|a| a.status.is_terminal())
                .then(|| (job.status(), job.cache_hits()));
            (spec, digest, label, Arc::clone(&job.events), finished, crash)
        };
        let (spec, digest, label, job_events, finished, crash) = completion;
        if !failed {
            self.record_arm(&spec, &label, cache_hit);
        }
        mab_telemetry::blackbox::job_event(
            job_id,
            if failed { "arm_failed" } else { "arm_done" },
            &digest,
        );
        let payload = format!(
            "{{\"job\":{job_id},\"index\":{arm_idx},\"digest\":\"{digest}\",\
             \"cache_hit\":{cache_hit},\"status\":\"{}\"}}",
            if failed { "failed" } else { "done" }
        );
        job_events.publish("arm_done", payload.clone());
        self.events.publish("arm_done", payload);
        if let Some(report) = crash {
            self.crashes.fetch_add(1, Ordering::Relaxed);
            self.progress(&format!(
                "arm {arm_idx} of job {job_id} crashed; postmortem: mab-inspect postmortem {report}"
            ));
            let payload = format!(
                "{{\"job\":{job_id},\"index\":{arm_idx},\"report\":\"{}\"}}",
                json::escape(&report)
            );
            job_events.publish("arm_crash", payload.clone());
            self.events.publish("arm_crash", payload);
        }
        if let Some((status, hits)) = finished {
            let payload =
                format!("{{\"job\":{job_id},\"status\":\"{status}\",\"cache_hits\":{hits}}}");
            job_events.publish("job_done", payload.clone());
            self.events.publish("job_done", payload);
        }
        let mut sched = self.sched.lock().unwrap();
        sched.open_arms = sched.open_arms.saturating_sub(1);
    }

    /// Handles one scheduled arm: cache hit, in-flight subscription, or a
    /// leased execution on the pool.
    fn process(self: &Arc<Self>, job_id: u64, arm_idx: usize) {
        let started = Instant::now();
        let (spec, digest) = {
            let jobs = self.jobs.lock().unwrap();
            let Some(job) = jobs.jobs.get(&job_id) else {
                return;
            };
            let arm = &job.arms[arm_idx];
            (arm.spec.clone(), arm.digest.clone())
        };
        // 1. Published result on disk?
        if self.cache.lookup(&digest).is_some() {
            self.arms_cached.fetch_add(1, Ordering::Relaxed);
            self.complete_arm(job_id, arm_idx, true, elapsed_ms(started), None);
            return;
        }
        // 2. Identical arm already executing? Subscribe instead of racing.
        {
            let mut sched = self.sched.lock().unwrap();
            if let Some(subscribers) = sched.inflight.get_mut(&digest) {
                subscribers.push((job_id, arm_idx));
                drop(sched);
                self.mark_running(job_id, arm_idx);
                return;
            }
            sched.inflight.insert(digest.clone(), Vec::new());
        }
        // 3. Execute. `pool.submit` blocks until a worker leases the arm,
        // which is what keeps the round-robin fair under load.
        self.mark_running(job_id, arm_idx);
        let state = Arc::clone(self);
        self.pool.submit(move |cancel| {
            let crash_dir = state.job_crash_dir(job_id);
            let result = state.executor.run(&spec, cancel, Some(&crash_dir));
            let wall_ms = elapsed_ms(started);
            let subscribers = {
                let mut sched = state.sched.lock().unwrap();
                sched.inflight.remove(&digest).unwrap_or_default()
            };
            match result {
                Ok(report) => {
                    if let Err(e) = state.cache.store(&digest, &spec.experiment, &report) {
                        state.progress(&format!("cache store for {digest} failed: {e}"));
                    }
                    state.arms_executed.fetch_add(1, Ordering::Relaxed);
                    state.complete_arm(job_id, arm_idx, false, wall_ms, None);
                    for (sub_job, sub_arm) in subscribers {
                        state.arms_cached.fetch_add(1, Ordering::Relaxed);
                        state.complete_arm(sub_job, sub_arm, true, wall_ms, None);
                    }
                }
                Err(message) => {
                    state.complete_arm(job_id, arm_idx, false, wall_ms, Some(message.clone()));
                    for (sub_job, sub_arm) in subscribers {
                        state.complete_arm(
                            sub_job,
                            sub_arm,
                            false,
                            wall_ms,
                            Some(format!("shared execution failed: {message}")),
                        );
                    }
                }
            }
        });
    }
}

fn dispatcher_loop(state: &Arc<ServeState>) {
    loop {
        let item = {
            let mut sched = state.sched.lock().unwrap();
            loop {
                if sched.stop {
                    return;
                }
                if let Some(item) = pick_round_robin(&mut sched) {
                    break item;
                }
                sched = state.sched_cv.wait(sched).unwrap();
            }
        };
        state.process(item.0, item.1);
    }
}

/// Pops the next arm round-robin across client queues, pruning emptied
/// queues.
fn pick_round_robin(sched: &mut Sched) -> Option<(u64, usize)> {
    let n = sched.clients.len();
    for k in 0..n {
        let i = (sched.rr + k) % n;
        if let Some(item) = sched.clients[i].1.pop_front() {
            if sched.clients[i].1.is_empty() {
                sched.clients.remove(i);
                sched.rr = if sched.clients.is_empty() {
                    0
                } else {
                    i % sched.clients.len()
                };
            } else {
                sched.rr = (i + 1) % n;
            }
            return Some(item);
        }
    }
    None
}

/// Lists the `.mabcrash` reports directly inside `dir`, newest first.
/// Missing directories (nothing ever crashed) yield an empty list.
fn crash_reports_in(dir: &PathBuf) -> Vec<String> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut reports: Vec<(std::time::SystemTime, String)> = entries
        .flatten()
        .filter_map(|entry| {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("mabcrash") {
                return None;
            }
            let modified = entry
                .metadata()
                .and_then(|m| m.modified())
                .unwrap_or(std::time::UNIX_EPOCH);
            Some((modified, path.display().to_string()))
        })
        .collect();
    reports.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    reports.into_iter().map(|(_, path)| path).collect()
}

fn elapsed_ms(started: Instant) -> f64 {
    started.elapsed().as_secs_f64() * 1e3
}

/// Seconds since the Unix epoch (0 when the clock is unavailable).
fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_interleaves_clients() {
        let mut sched = Sched::default();
        sched
            .clients
            .push(("a".to_string(), VecDeque::from([(1, 0), (1, 1), (1, 2)])));
        sched
            .clients
            .push(("b".to_string(), VecDeque::from([(2, 0)])));
        sched
            .clients
            .push(("c".to_string(), VecDeque::from([(3, 0), (3, 1)])));
        let mut order = Vec::new();
        while let Some(item) = pick_round_robin(&mut sched) {
            order.push(item);
        }
        // a b c a c a — each pass takes one arm per client with work left.
        assert_eq!(order, vec![(1, 0), (2, 0), (3, 0), (1, 1), (3, 1), (1, 2)]);
        assert!(sched.clients.is_empty());
    }
}
