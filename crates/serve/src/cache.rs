//! The content-addressed result store behind `mab-serve`.
//!
//! One directory per completed arm, named by the ledger content address
//! ([`mab_ledger::config_digest`] over experiment, canonical config and
//! code version):
//!
//! ```text
//! <root>/<digest>/report.txt   the arm's exact stdout (the artifact)
//! <root>/<digest>/meta.json    digest, experiment, byte count, CRC32
//! ```
//!
//! Determinism makes this sound: the digest names a pure computation, so a
//! stored report can be served in place of a re-execution byte-for-byte.
//! The store defends the other direction too — a hit is only a hit when
//! the report's CRC32 matches `meta.json`, so truncated or corrupted
//! entries read as misses and get recomputed, never served.
//!
//! Writes go through a temp file + atomic rename of the entry directory,
//! so concurrent writers and crashed daemons can never publish a torn
//! entry.

use mab_traces::format::crc32;
use std::path::{Path, PathBuf};

/// A content-addressed result store rooted at one directory.
#[derive(Debug, Clone)]
pub struct Cache {
    root: PathBuf,
}

impl Cache {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Cache> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Cache { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Looks up a digest, verifying the entry's CRC. Any mismatch —
    /// missing files, unparsable meta, truncation, bit rot — is a miss.
    pub fn lookup(&self, digest: &str) -> Option<String> {
        let dir = self.root.join(digest);
        let meta_text = std::fs::read_to_string(dir.join("meta.json")).ok()?;
        let meta = mab_ledger::json::parse(meta_text.trim()).ok()?;
        let stated_crc = meta.get("crc32").and_then(|v| v.as_str())?.to_string();
        let stated_bytes = meta.get("bytes").and_then(|v| v.as_u64())?;
        let report = std::fs::read_to_string(dir.join("report.txt")).ok()?;
        if report.len() as u64 != stated_bytes {
            return None;
        }
        if format!("{:08x}", crc32(report.as_bytes())) != stated_crc {
            return None;
        }
        Some(report)
    }

    /// Stores `report` under `digest`, atomically replacing any existing
    /// entry.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; a failed store leaves no partial
    /// entry behind.
    pub fn store(&self, digest: &str, experiment: &str, report: &str) -> std::io::Result<()> {
        let tmp = self
            .root
            .join(format!(".tmp-{digest}-{}", std::process::id()));
        std::fs::create_dir_all(&tmp)?;
        let meta = format!(
            "{{\"digest\":\"{digest}\",\"experiment\":\"{}\",\"bytes\":{},\"crc32\":\"{:08x}\"}}\n",
            mab_ledger::json::escape(experiment),
            report.len(),
            crc32(report.as_bytes()),
        );
        std::fs::write(tmp.join("report.txt"), report)?;
        std::fs::write(tmp.join("meta.json"), meta)?;
        let dir = self.root.join(digest);
        // Publish atomically; an existing (equal, by construction) entry
        // stays in place if the rename loses a race.
        if dir.exists() {
            std::fs::remove_dir_all(&dir).ok();
        }
        match std::fs::rename(&tmp, &dir) {
            Ok(()) => Ok(()),
            Err(e) => {
                std::fs::remove_dir_all(&tmp).ok();
                if dir.join("meta.json").exists() {
                    // Lost a store race to an identical entry: fine.
                    Ok(())
                } else {
                    Err(e)
                }
            }
        }
    }

    /// Number of published entries (digest directories) in the store.
    pub fn entries(&self) -> usize {
        std::fs::read_dir(&self.root)
            .map(|dir| {
                dir.filter_map(Result::ok)
                    .filter(|e| {
                        e.file_name()
                            .to_str()
                            .is_some_and(|n| !n.starts_with('.') && n.len() == 16)
                    })
                    .count()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(tag: &str) -> Cache {
        let root =
            std::env::temp_dir().join(format!("mab-serve-cache-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        Cache::open(root).unwrap()
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let cache = temp_cache("roundtrip");
        let digest = "00112233445566aa";
        assert_eq!(cache.lookup(digest), None);
        cache
            .store(digest, "fig08_singlecore", "line one\nline two\n")
            .unwrap();
        assert_eq!(
            cache.lookup(digest).as_deref(),
            Some("line one\nline two\n")
        );
        assert_eq!(cache.entries(), 1);
        std::fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn corrupt_or_truncated_entries_are_misses() {
        let cache = temp_cache("corrupt");
        let digest = "aabbccddeeff0011";
        cache.store(digest, "x", "the full report body\n").unwrap();
        let report_path = cache.root().join(digest).join("report.txt");

        // Truncation: byte count mismatch.
        std::fs::write(&report_path, "the full").unwrap();
        assert_eq!(cache.lookup(digest), None);

        // Same-length corruption: CRC mismatch.
        std::fs::write(&report_path, "the full report bodY\n").unwrap();
        assert_eq!(cache.lookup(digest), None);

        // Restore: hit again.
        cache.store(digest, "x", "the full report body\n").unwrap();
        assert_eq!(
            cache.lookup(digest).as_deref(),
            Some("the full report body\n")
        );

        // Missing meta: miss.
        std::fs::remove_file(cache.root().join(digest).join("meta.json")).unwrap();
        assert_eq!(cache.lookup(digest), None);
        std::fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn store_overwrites_atomically() {
        let cache = temp_cache("overwrite");
        let digest = "0123456789abcdef";
        cache.store(digest, "x", "v1\n").unwrap();
        cache.store(digest, "x", "v1\n").unwrap();
        assert_eq!(cache.lookup(digest).as_deref(), Some("v1\n"));
        assert_eq!(cache.entries(), 1);
        std::fs::remove_dir_all(cache.root()).ok();
    }
}
