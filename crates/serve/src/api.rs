//! HTTP routing for the serve daemon.
//!
//! | Method | Path                    | Reply |
//! |--------|-------------------------|-------|
//! | POST   | `/jobs`                 | submit a sweep; job document, or `400`/`429`/`503` |
//! | GET    | `/jobs/:id`             | job status document |
//! | GET    | `/jobs/:id/artifact`    | the finished job's report (`?arm=N` selects one arm) |
//! | GET    | `/jobs/:id/events`      | per-job SSE progress stream |
//! | GET    | `/events`               | global SSE progress stream |
//! | GET    | `/queue`                | scheduler/cache snapshot |
//! | GET    | `/crashes`              | `.mabcrash` reports with job attribution |
//! | GET    | `/metrics`              | Prometheus text exposition |
//! | GET    | `/experiments`          | the experiment registry with defaults |
//! | GET    | `/` or `/healthz`       | `ok` |
//!
//! Runs on `mab-monitor`'s shared std-only HTTP core; SSE streams use the
//! same ring/heartbeat machinery as the monitor's `/events`.

use crate::job::parse_job;
use crate::state::{ArtifactError, ServeState, SubmitError};
use mab_monitor::http::{Conn, Request};
use mab_monitor::sse;
use std::sync::Arc;

/// Routes one request against the daemon state. Plugged into
/// [`mab_monitor::http::serve_with`] by the `mab-serve` binary.
pub fn route(state: &Arc<ServeState>, req: &Request, conn: &mut Conn) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/jobs") => submit(state, req, conn),
        ("GET", "/") | ("GET", "/healthz") => {
            let _ = conn.respond("200 OK", "text/plain", "ok\n");
        }
        ("GET", "/queue") => {
            let mut body = state.queue_json();
            body.push('\n');
            let _ = conn.respond("200 OK", "application/json", &body);
        }
        ("GET", "/crashes") => {
            let mut body = state.crashes_json();
            body.push('\n');
            let _ = conn.respond("200 OK", "application/json", &body);
        }
        ("GET", "/metrics") => {
            let _ = conn.respond("200 OK", "text/plain; version=0.0.4", &state.metrics_page());
        }
        ("GET", "/experiments") => {
            let _ = conn.respond("200 OK", "application/json", &experiments_json());
        }
        ("GET", "/events") => {
            sse::stream_ring(conn, &state.events, &state.sse_clients, &state.sse_dropped);
        }
        ("GET", path) => job_routes(state, path, req, conn),
        _ => {
            let _ = conn.respond("405 Method Not Allowed", "text/plain", "GET or POST only\n");
        }
    }
}

fn submit(state: &Arc<ServeState>, req: &Request, conn: &mut Conn) {
    let spec = match parse_job(&req.body) {
        Ok(spec) => spec,
        Err(message) => {
            let _ = conn.respond("400 Bad Request", "text/plain", &format!("{message}\n"));
            return;
        }
    };
    match state.submit(spec) {
        Ok(id) => {
            let mut body = state.job_json(id).unwrap_or_default();
            body.push('\n');
            let _ = conn.respond("200 OK", "application/json", &body);
        }
        Err(SubmitError::QueueFull) => {
            let _ = conn.respond(
                "429 Too Many Requests",
                "text/plain",
                "queue full; retry after in-flight arms finish\n",
            );
        }
        Err(SubmitError::Draining) => {
            let _ = conn.respond(
                "503 Service Unavailable",
                "text/plain",
                "daemon is draining for shutdown\n",
            );
        }
    }
}

/// Handles `/jobs/:id`, `/jobs/:id/artifact` and `/jobs/:id/events`.
fn job_routes(state: &Arc<ServeState>, path: &str, req: &Request, conn: &mut Conn) {
    let Some(rest) = path.strip_prefix("/jobs/") else {
        let _ = conn.respond("404 Not Found", "text/plain", "not found\n");
        return;
    };
    let (id_text, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, Some(tail)),
        None => (rest, None),
    };
    let Ok(id) = id_text.parse::<u64>() else {
        let _ = conn.respond("404 Not Found", "text/plain", "bad job id\n");
        return;
    };
    match tail {
        None => match state.job_json(id) {
            Some(mut body) => {
                body.push('\n');
                let _ = conn.respond("200 OK", "application/json", &body);
            }
            None => {
                let _ = conn.respond("404 Not Found", "text/plain", "no such job\n");
            }
        },
        Some("artifact") => {
            let arm = req.query_param("arm").and_then(|v| v.parse::<usize>().ok());
            match state.artifact(id, arm) {
                Ok(report) => {
                    let _ = conn.respond("200 OK", "text/plain", &report);
                }
                Err(ArtifactError::NoSuchJob) => {
                    let _ = conn.respond("404 Not Found", "text/plain", "no such job\n");
                }
                Err(ArtifactError::NoSuchArm) => {
                    let _ = conn.respond("404 Not Found", "text/plain", "no such arm\n");
                }
                Err(ArtifactError::NotFinished(status)) => {
                    let _ = conn.respond(
                        "409 Conflict",
                        "text/plain",
                        &format!("job is {status}; artifact not ready\n"),
                    );
                }
                Err(ArtifactError::CacheMiss(digest)) => {
                    let _ = conn.respond(
                        "503 Service Unavailable",
                        "text/plain",
                        &format!(
                            "cache entry {digest} is gone or corrupt; resubmit to recompute\n"
                        ),
                    );
                }
            }
        }
        Some("events") => match state.job_events(id) {
            Some(ring) => {
                sse::stream_ring(conn, &ring, &state.sse_clients, &state.sse_dropped);
            }
            None => {
                let _ = conn.respond("404 Not Found", "text/plain", "no such job\n");
            }
        },
        Some(_) => {
            let _ = conn.respond("404 Not Found", "text/plain", "not found\n");
        }
    }
}

/// Renders the experiment registry (name + resolved defaults) so clients
/// can discover what `POST /jobs` accepts.
fn experiments_json() -> String {
    let mut out = String::from("{\"experiments\":[");
    for (i, def) in mab_experiments::spec::EXPERIMENTS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"experiment\":\"{}\",\"instructions\":{},\"mixes\":{}}}",
            def.name, def.default_instructions, def.default_mixes
        ));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiments_json_lists_the_registry() {
        let doc = mab_ledger::json::parse(experiments_json().trim()).unwrap();
        let list = doc.get("experiments").unwrap().as_arr().unwrap();
        assert_eq!(list.len(), mab_experiments::spec::EXPERIMENTS.len());
        assert!(list
            .iter()
            .any(|e| { e.get("experiment").and_then(|v| v.as_str()) == Some("fig08_singlecore") }));
    }
}
