//! Sweep-as-a-service daemon: HTTP front end over the shared worker pool
//! and the content-addressed result cache.
//!
//! ```text
//! mab-serve [--addr HOST:PORT] [--cache-dir DIR] [--ledger DIR]
//!           [--bin-dir DIR] [--workers N] [--queue-cap N] [--quiet]
//! ```
//!
//! Runs until SIGTERM/SIGINT, then shuts down gracefully: stops accepting
//! submissions (503), drains in-flight arms into the cache, and persists
//! unfinished jobs so the next start resumes them instead of recomputing.

use mab_monitor::http::{self, HttpConfig};
use mab_serve::{api, signal, BinaryExecutor, ServeConfig, ServeState};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: mab-serve [options]
  --addr HOST:PORT   listen address            (default 127.0.0.1:8640)
  --cache-dir DIR    content-addressed cache   (default cache/serve)
  --ledger DIR       run-ledger directory      (default $MAB_LEDGER if set)
  --bin-dir DIR      experiment binaries       (default: mab-serve's own dir)
  --workers N        executor threads          (default: available cores)
  --queue-cap N      max admitted open arms    (default 256)
  --quiet            suppress stderr progress lines
  --help             print this help
";

struct Flags {
    addr: String,
    config: ServeConfig,
    bin_dir: Option<std::path::PathBuf>,
}

fn parse_flags() -> Result<Flags, String> {
    let mut flags = Flags {
        addr: "127.0.0.1:8640".to_string(),
        config: ServeConfig {
            ledger_dir: std::env::var_os("MAB_LEDGER").map(std::path::PathBuf::from),
            ..ServeConfig::default()
        },
        bin_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => flags.addr = value("--addr")?,
            "--cache-dir" => flags.config.cache_dir = value("--cache-dir")?.into(),
            "--ledger" => flags.config.ledger_dir = Some(value("--ledger")?.into()),
            "--bin-dir" => flags.bin_dir = Some(value("--bin-dir")?.into()),
            "--workers" => {
                flags.config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers expects an integer".to_string())?;
            }
            "--queue-cap" => {
                flags.config.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|_| "--queue-cap expects an integer".to_string())?;
            }
            "--quiet" => flags.config.quiet = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(flags)
}

fn main() {
    let flags = match parse_flags() {
        Ok(flags) => flags,
        Err(message) => {
            eprintln!("mab-serve: {message}");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    let quiet = flags.config.quiet;
    // Arm the daemon's own flight recorder: a panic or fatal signal in
    // the daemon itself leaves a report in the crash root (executed arms
    // get per-job subdirectories via MAB_CRASH_DIR).
    mab_telemetry::blackbox::install(
        "mab-serve",
        "",
        &[],
        &flags.config.cache_dir.join("crashes"),
    );
    let executor = match &flags.bin_dir {
        Some(dir) => BinaryExecutor {
            bin_dir: dir.clone(),
        },
        None => BinaryExecutor::next_to_current_exe(),
    };
    let state = match ServeState::start(flags.config, Arc::new(executor)) {
        Ok(state) => state,
        Err(e) => {
            eprintln!("mab-serve: failed to start: {e}");
            std::process::exit(1);
        }
    };

    signal::install();
    let stop = Arc::new(AtomicBool::new(false));
    let handler_state = Arc::clone(&state);
    let mut server = match http::serve_with(
        &flags.addr,
        HttpConfig::from_env("mab-serve-http"),
        Arc::clone(&state.http),
        Arc::clone(&stop),
        Arc::new(move |req, conn| api::route(&handler_state, req, conn)),
    ) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("mab-serve: cannot bind {}: {e}", flags.addr);
            std::process::exit(1);
        }
    };
    if !quiet {
        eprintln!(
            "[mab-serve] listening on http://{} (cache {}, {} workers)",
            server.addr(),
            state.config.cache_dir.display(),
            state.config.workers.max(1),
        );
        eprintln!("[mab-serve] POST /jobs to submit; GET /queue for the global view");
    }

    while !signal::requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    if !quiet {
        eprintln!("[mab-serve] shutdown requested; draining in-flight arms");
    }
    // Drain the scheduler first — the HTTP plane keeps answering status
    // queries (submissions get 503) while arms finish — then stop the
    // listener.
    state.shutdown();
    server.shutdown();
    if !quiet {
        eprintln!("[mab-serve] bye");
    }
}
