//! End-to-end: scrape every endpoint while a real `mab-runner` sweep is in
//! flight, and confirm the SSE stream carries the full arm lifecycle.

use mab_monitor::{client, Monitor, RunInfo, DEFAULT_ADDR};
use mab_runner::{sweep, SweepOptions};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

#[test]
fn endpoints_respond_during_a_live_sweep() {
    let monitor = Monitor::start(
        DEFAULT_ADDR,
        RunInfo {
            experiment: "live_scrape".to_string(),
            digest: "feedc0de00000000".to_string(),
            code: "0.1.0+test".to_string(),
            jobs: 4,
            started_unix: 1,
        },
    )
    .unwrap();
    let url = monitor.url();

    // Subscribe to /events before the sweep starts so nothing is missed.
    let mut sub = client::SseClient::connect(&format!("{url}/events"), TIMEOUT).unwrap();

    let scraped_mid_sweep = AtomicBool::new(false);
    let specs: Vec<u64> = (0..24).collect();
    let results = sweep(&specs, SweepOptions::new(4, 99), |ctx, spec| {
        // Scrape from inside an arm: the sweep is provably live.
        if ctx.index == 4 {
            let metrics = client::get(&format!("{url}/metrics"), TIMEOUT).unwrap();
            assert_eq!(metrics.status, 200);
            assert!(
                metrics.body.contains("mab_sweep_arms_total 24"),
                "{}",
                metrics.body
            );
            assert!(
                metrics.body.contains("mab_sweep_active 1"),
                "{}",
                metrics.body
            );

            let status = client::get(&format!("{url}/status"), TIMEOUT).unwrap();
            assert_eq!(status.status, 200);
            let doc = mab_ledger::json::parse(status.body.trim()).unwrap();
            assert_eq!(doc.get("experiment").unwrap().as_str(), Some("live_scrape"));
            let sweep_obj = doc.get("sweep").unwrap();
            assert_eq!(sweep_obj.get("total").unwrap().as_u64(), Some(24));
            assert_eq!(sweep_obj.get("active").unwrap().as_bool(), Some(true));
            assert!(!doc.get("arms").unwrap().as_arr().unwrap().is_empty());
            scraped_mid_sweep.store(true, Ordering::SeqCst);
        }
        std::thread::sleep(Duration::from_millis(2));
        *spec * 2
    })
    .unwrap();
    assert_eq!(results.len(), 24);
    assert!(scraped_mid_sweep.load(Ordering::SeqCst), "arm 4 never ran?");

    // The SSE stream saw the whole lifecycle for this sweep.
    let mut begins = 0;
    let mut starts = 0;
    let mut finishes = 0;
    let mut ends = 0;
    while finishes < 24 || ends == 0 {
        match sub.next_frame() {
            Ok(Some(frame)) => match frame.event.as_str() {
                "sweep_begin" => begins += 1,
                "arm_start" => starts += 1,
                "arm_finish" => finishes += 1,
                "sweep_end" => ends += 1,
                _ => {}
            },
            Ok(None) => break,
            Err(e) => panic!("sse stream died early: {e} (f={finishes} e={ends})"),
        }
    }
    assert_eq!(begins, 1);
    assert_eq!(starts, 24);
    assert_eq!(finishes, 24);
    assert_eq!(ends, 1);

    // Post-sweep: the cell reports inactive, counts stay readable.
    let metrics = client::get(&format!("{url}/metrics"), TIMEOUT).unwrap();
    assert!(
        metrics.body.contains("mab_sweep_active 0"),
        "{}",
        metrics.body
    );
    assert!(
        metrics.body.contains("mab_sweep_arms_completed 24"),
        "{}",
        metrics.body
    );
    assert!(monitor.scrape_count() >= 3);
    monitor.shutdown();
}
