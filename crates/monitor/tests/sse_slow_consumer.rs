//! Slow-consumer behavior of the SSE broadcast ring: a client that reads
//! slower than the run publishes must lose events (the publisher never
//! blocks), and the loss must be *accounted* — added to the shared
//! `sse_dropped` counter and announced in-stream with a `: dropped N`
//! comment so the client knows its view has a gap.

use mab_monitor::client::SseClient;
use mab_monitor::http::{serve_with, Handler, HttpConfig, HttpStats};
use mab_monitor::sse::stream_ring;
use mab_monitor::EventRing;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(10);

#[test]
fn slow_consumer_drops_are_counted_and_announced() {
    let ring = Arc::new(EventRing::default());
    let clients = Arc::new(AtomicU64::new(0));
    let dropped = Arc::new(AtomicU64::new(0));

    let handler: Handler = {
        let ring = Arc::clone(&ring);
        let clients = Arc::clone(&clients);
        let dropped = Arc::clone(&dropped);
        Arc::new(move |_req, conn| stream_ring(conn, &ring, &clients, &dropped))
    };
    let mut server = serve_with(
        "127.0.0.1:0",
        HttpConfig::from_env("sse-slow-test"),
        Arc::new(HttpStats::default()),
        Arc::new(AtomicBool::new(false)),
        handler,
    )
    .unwrap();
    let url = format!("{}/events", server.addr());

    // A deliberately slow reader: it naps between frames, so the socket
    // buffer fills, the streamer blocks on write, and the publisher laps
    // the bounded ring. It stops at the first `: dropped N` announcement.
    let announced = Arc::new(AtomicU64::new(0));
    let reader = {
        let announced = Arc::clone(&announced);
        std::thread::spawn(move || -> u64 {
            let mut client = SseClient::connect(&url, TIMEOUT).unwrap();
            let mut received = 0u64;
            loop {
                match client.next_frame() {
                    Ok(Some(frame)) => {
                        if frame.event == "comment" {
                            if let Some(n) = frame.data.strip_prefix("dropped ") {
                                announced.store(n.trim().parse().unwrap(), Ordering::SeqCst);
                                return received;
                            }
                            continue; // heartbeat
                        }
                        received += 1;
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Ok(None) => return received,
                    Err(e) => panic!("stream died before announcing drops: {e}"),
                }
            }
        })
    };

    // Wait for the subscription so nothing below races the handshake.
    let deadline = Instant::now() + TIMEOUT;
    while clients.load(Ordering::Relaxed) == 0 {
        assert!(Instant::now() < deadline, "client never subscribed");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Flood the ring with fat payloads until the streamer records a gap.
    // `publish` must never block, no matter how far behind the reader is.
    let payload = format!("{{\"fill\":\"{}\"}}", "x".repeat(32 * 1024));
    let mut published = 0u64;
    while dropped.load(Ordering::SeqCst) == 0 {
        assert!(
            published < 400_000,
            "published {published} events without the streamer reporting a drop"
        );
        ring.publish("spam", payload.clone());
        published += 1;
    }

    let received = reader.join().unwrap();
    let counted = dropped.load(Ordering::SeqCst);
    let told = announced.load(Ordering::SeqCst);
    assert!(counted > 0, "shared sse_dropped counter never moved");
    assert!(told > 0, "no `: dropped N` comment reached the client");
    assert!(
        told <= counted,
        "announced {told} drops but counter holds {counted}"
    );
    // Lossy by design: the slow client saw strictly fewer events than were
    // published, and the gap it was told about covers the shortfall bound.
    assert!(
        received < published,
        "slow client somehow received all {published} events"
    );
    server.shutdown();
}
