//! Server-Sent-Events streaming for `GET /events`.
//!
//! Framing follows the SSE spec: each event is an `id:` line (the ring
//! sequence number), an `event:` line (`sweep_begin`, `arm_start`,
//! `arm_finish`, `sweep_end`), and a `data:` line with a one-line JSON
//! payload, terminated by a blank line. While the run is quiet the streamer
//! emits a `: heartbeat` comment every [`HEARTBEAT`] so proxies and clients
//! can tell a silent run from a dead socket.
//!
//! Clients that read slower than the run publishes fall behind the bounded
//! ring ([`crate::state::SSE_RING_CAP`]); the gap is skipped, announced
//! with a `: dropped N` comment, and added to the monitor's
//! `sse_dropped` counter — the publisher never blocks on a slow client.

use crate::http::write_raw;
use crate::state::MonitorState;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Idle interval between heartbeat comments.
pub const HEARTBEAT: Duration = Duration::from_secs(1);

/// Streams events to one client until it disconnects or `stop` is set.
pub fn stream(mut stream: TcpStream, state: &MonitorState, stop: &AtomicBool) {
    // Capture the tail before the response headers go out: anything
    // published after the client sees our headers must be delivered.
    let mut next = state.events.next_seq();
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n";
    if write_raw(&mut stream, head.as_bytes()).is_err() {
        return;
    }
    state.sse_clients.fetch_add(1, Ordering::Relaxed);
    // Announce the reconnect delay, then stream from the captured tail.
    let alive = write_raw(&mut stream, b"retry: 2000\n\n").is_ok();
    let mut frame = String::new();
    let mut ok = alive;
    while ok && !stop.load(Ordering::SeqCst) {
        let (events, dropped) = state.events.wait_after(next, HEARTBEAT);
        frame.clear();
        if dropped > 0 {
            state.sse_dropped.fetch_add(dropped, Ordering::Relaxed);
            frame.push_str(&format!(": dropped {dropped}\n\n"));
        }
        if events.is_empty() {
            frame.push_str(": heartbeat\n\n");
        }
        for (seq, event, payload) in &events {
            frame.push_str(&format!("id: {seq}\nevent: {event}\ndata: {payload}\n\n"));
            next = seq + 1;
        }
        ok = write_raw(&mut stream, frame.as_bytes()).is_ok();
    }
    state.sse_clients.fetch_sub(1, Ordering::Relaxed);
}
