//! Server-Sent-Events streaming for `GET /events`.
//!
//! Framing follows the SSE spec: each event is an `id:` line (the ring
//! sequence number), an `event:` line (`sweep_begin`, `arm_start`,
//! `arm_finish`, `sweep_end`), and a `data:` line with a one-line JSON
//! payload, terminated by a blank line. While the run is quiet the streamer
//! emits a `: heartbeat` comment every [`HEARTBEAT`] so proxies and clients
//! can tell a silent run from a dead socket.
//!
//! Clients that read slower than the run publishes fall behind the bounded
//! ring ([`crate::state::SSE_RING_CAP`]); the gap is skipped, announced
//! with a `: dropped N` comment, and added to the monitor's
//! `sse_dropped` counter — the publisher never blocks on a slow client.
//!
//! The generic [`stream_ring`] form streams any [`EventRing`]; `mab-serve`
//! uses it for its per-job and global progress streams.

use crate::http::Conn;
use crate::state::{EventRing, MonitorState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Idle interval between heartbeat comments.
pub const HEARTBEAT: Duration = Duration::from_secs(1);

/// Streams the monitor's event ring to one client until it disconnects or
/// the server stops.
pub fn stream(conn: &mut Conn, state: &MonitorState) {
    stream_ring(conn, &state.events, &state.sse_clients, &state.sse_dropped);
}

/// Streams `ring` to one client until it disconnects or the server stops,
/// maintaining the given subscriber/drop counters.
pub fn stream_ring(
    conn: &mut Conn,
    ring: &EventRing,
    clients: &AtomicU64,
    dropped_total: &AtomicU64,
) {
    // Capture the tail before the response headers go out: anything
    // published after the client sees our headers must be delivered.
    let mut next = ring.next_seq();
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n";
    if conn.write_raw(head.as_bytes()).is_err() {
        return;
    }
    clients.fetch_add(1, Ordering::Relaxed);
    // Announce the reconnect delay, then stream from the captured tail.
    let alive = conn.write_raw(b"retry: 2000\n\n").is_ok();
    let mut frame = String::new();
    let mut ok = alive;
    while ok && !conn.stop_requested() {
        let (events, dropped) = ring.wait_after(next, HEARTBEAT);
        frame.clear();
        if dropped > 0 {
            dropped_total.fetch_add(dropped, Ordering::Relaxed);
            frame.push_str(&format!(": dropped {dropped}\n\n"));
        }
        if events.is_empty() {
            frame.push_str(": heartbeat\n\n");
        }
        for (seq, event, payload) in &events {
            frame.push_str(&format!("id: {seq}\nevent: {event}\ndata: {payload}\n\n"));
            next = seq + 1;
        }
        ok = conn.write_raw(frame.as_bytes()).is_ok();
    }
    clients.fetch_sub(1, Ordering::Relaxed);
}
