//! JSON rendering for `GET /status`.
//!
//! One flat document: run identity (experiment, ledger digest, code
//! version), the live sweep figures (from the same
//! [`mab_telemetry::live`] helpers as `/metrics` and the progress line),
//! per-worker accounting, scrape counters, and the per-arm state table
//! (most recent [`crate::state::ARM_TABLE_CAP`] arms). Strings are escaped
//! with `mab_ledger::json::escape`, so the output parses with the
//! workspace's own JSON parser — which is exactly what `mab-inspect watch`
//! and the smoke tests do.

use crate::state::{ArmPhase, MonitorState};
use mab_ledger::json;
use mab_telemetry::live;
use std::sync::atomic::Ordering;

/// Renders the status document (single line, no trailing newline).
pub fn render(state: &MonitorState) -> String {
    let mut out = String::with_capacity(2048);
    out.push('{');
    out.push_str(&format!(
        "\"experiment\":\"{}\",\"digest\":\"{}\",\"code\":\"{}\",\"jobs\":{},\"started_unix\":{}",
        json::escape(&state.run.experiment),
        json::escape(&state.run.digest),
        json::escape(&state.run.code),
        state.run.jobs,
        state.run.started_unix,
    ));

    out.push_str(",\"sweep\":");
    match live::sweep_snapshot() {
        Some(snap) => {
            let elapsed = snap.elapsed_secs();
            let rate = live::rate_per_sec(snap.done, elapsed);
            let eta = live::eta_seconds(snap.done, snap.total, elapsed);
            out.push_str(&format!(
                "{{\"active\":{},\"done\":{},\"total\":{},\"elapsed_secs\":{},\"rate_per_sec\":{},\"eta_secs\":{},\"eta\":\"{}\"}}",
                snap.active,
                snap.done,
                snap.total,
                json::fmt_f64(elapsed),
                json::fmt_f64(rate),
                eta.map_or("null".to_string(), json::fmt_f64),
                live::format_eta(eta),
            ));
        }
        None => out.push_str("null"),
    }

    out.push_str(&format!(
        ",\"scrapes\":{{\"metrics\":{},\"status\":{},\"sse_clients\":{},\"sse_dropped\":{},\"rejected_conns\":{}}}",
        state.metrics_scrapes.load(Ordering::Relaxed),
        state.status_scrapes.load(Ordering::Relaxed),
        state.sse_clients.load(Ordering::Relaxed),
        state.sse_dropped.load(Ordering::Relaxed),
        state.http.rejected_conns.load(Ordering::Relaxed),
    ));

    let table = state.table.lock().unwrap();
    out.push_str(&format!(
        ",\"arms_started\":{},\"arms_finished\":{},\"arm_rows_evicted\":{}",
        table.started, table.finished, table.evicted
    ));
    out.push_str(",\"workers\":[");
    for (worker, w) in table.workers.iter().enumerate() {
        if worker > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"worker\":{worker},\"busy_ns\":{},\"arms\":{},\"running\":",
            w.busy_ns, w.arms_finished
        ));
        match w.running {
            Some((sweep, index)) => {
                out.push_str(&format!("{{\"sweep\":{sweep},\"index\":{index}}}"));
            }
            None => out.push_str("null"),
        }
        out.push('}');
    }
    out.push(']');
    out.push_str(",\"arms\":[");
    for (i, arm) in table.arms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"sweep\":{},\"index\":{},\"seed\":{},\"worker\":{},\"state\":\"{}\",\"wall_ns\":{}}}",
            arm.sweep,
            arm.index,
            arm.seed,
            arm.worker,
            match arm.phase {
                ArmPhase::Running => "running",
                ArmPhase::Done => "done",
            },
            arm.wall_ns,
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::RunInfo;
    use mab_runner::{ArmEvent, ArmObservation};

    #[test]
    fn status_parses_with_the_workspace_json_parser() {
        let state = MonitorState::new(RunInfo {
            experiment: "fig10 \"odd\"".to_string(),
            digest: "feedfacecafebeef".to_string(),
            code: "0.1.0+1234567".to_string(),
            jobs: 4,
            started_unix: 1_754_000_000,
        });
        state.observe(&ArmEvent::SweepBegin {
            sweep: 0,
            total: 2,
            jobs: 2,
        });
        state.observe(&ArmEvent::ArmStart {
            sweep: 0,
            index: 0,
            seed: u64::MAX,
            worker: 1,
        });
        state.observe(&ArmEvent::ArmFinish(ArmObservation {
            sweep: 0,
            index: 0,
            seed: u64::MAX,
            wall_ns: 1234,
            worker: 1,
        }));
        let doc = render(&state);
        let v = json::parse(&doc).unwrap();
        assert_eq!(v.get("experiment").unwrap().as_str(), Some("fig10 \"odd\""));
        assert_eq!(v.get("jobs").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("arms_finished").unwrap().as_u64(), Some(1));
        let arms = v.get("arms").unwrap().as_arr().unwrap();
        assert_eq!(arms.len(), 1);
        // Full 64-bit seeds survive (the parser holds integers exactly).
        assert_eq!(arms[0].get("seed").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(arms[0].get("state").unwrap().as_str(), Some("done"));
        let workers = v.get("workers").unwrap().as_arr().unwrap();
        assert_eq!(workers.len(), 2);
        assert_eq!(workers[1].get("busy_ns").unwrap().as_u64(), Some(1234));
    }
}
