//! Shared monitor state: the live arm table, per-worker accounting, the SSE
//! broadcast ring, and scrape counters.
//!
//! Everything here is fed by `mab-runner`'s event-observer hook and read by
//! the HTTP handlers. Updates take short `Mutex` sections on the *observer*
//! side only at arm granularity (one lock per arm start/finish — never per
//! simulated cycle), and readers copy the state out under the same lock, so
//! a stalled HTTP client can delay another scrape but never a simulation
//! step: the hot path inside an arm touches no monitor state at all.

use mab_runner::ArmEvent;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Maximum arms retained in the live table; older entries are evicted (and
/// counted) so a 100k-arm sweep cannot grow the monitor without bound.
pub const ARM_TABLE_CAP: usize = 1024;

/// Maximum events retained for SSE catch-up; clients that fall further
/// behind skip ahead and the gap is counted as drops.
pub const SSE_RING_CAP: usize = 1024;

/// Static description of the monitored run, shown by `/status` and stamped
/// on `/metrics` as the info gauge.
#[derive(Debug, Clone, Default)]
pub struct RunInfo {
    /// Experiment (binary) name.
    pub experiment: String,
    /// The run's ledger config digest (identity content-address).
    pub digest: String,
    /// Code version string (`<crate version>+<git rev>`).
    pub code: String,
    /// Worker threads the run was asked to use.
    pub jobs: u64,
    /// Unix timestamp when the run started.
    pub started_unix: u64,
}

/// Lifecycle phase of a tracked arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArmPhase {
    /// Claimed by a worker, still executing.
    Running,
    /// Completed.
    Done,
}

/// One row of the live arm table.
#[derive(Debug, Clone, Copy)]
pub struct ArmState {
    /// The arm's sweep sequence number.
    pub sweep: u32,
    /// The arm's spec index within its sweep.
    pub index: usize,
    /// The arm's derived child seed.
    pub seed: u64,
    /// Worker that claimed the arm.
    pub worker: usize,
    /// Running or done.
    pub phase: ArmPhase,
    /// Wall time in nanoseconds once done (0 while running).
    pub wall_ns: u64,
}

/// Cumulative per-worker accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerState {
    /// Total nanoseconds spent inside completed arms.
    pub busy_ns: u64,
    /// Arms this worker completed.
    pub arms_finished: u64,
    /// The arm currently running on this worker, if any.
    pub running: Option<(u32, usize)>,
}

/// The live arm table plus sweep/worker aggregates, updated per arm event.
#[derive(Debug, Default)]
pub struct ArmTable {
    /// Most recent arms, oldest first, capped at [`ARM_TABLE_CAP`].
    pub arms: VecDeque<ArmState>,
    /// Rows evicted from the table to stay under the cap.
    pub evicted: u64,
    /// Per-worker accounting, indexed by worker id.
    pub workers: Vec<WorkerState>,
    /// Arms started, cumulatively across sweeps.
    pub started: u64,
    /// Arms finished, cumulatively across sweeps.
    pub finished: u64,
    /// The most recent sweep's id, spec count and finished count.
    pub current: Option<(u32, usize, usize)>,
}

impl ArmTable {
    fn worker_mut(&mut self, worker: usize) -> &mut WorkerState {
        if self.workers.len() <= worker {
            self.workers.resize_with(worker + 1, WorkerState::default);
        }
        &mut self.workers[worker]
    }

    fn push_arm(&mut self, arm: ArmState) {
        if self.arms.len() == ARM_TABLE_CAP {
            self.arms.pop_front();
            self.evicted += 1;
        }
        self.arms.push_back(arm);
    }
}

/// A broadcast ring of rendered SSE payloads with sequence numbers.
///
/// Publishers append and notify; each streaming client remembers the next
/// sequence it wants and calls [`EventRing::wait_after`], which returns the
/// available suffix plus how many events it missed (evicted before it could
/// read them).
#[derive(Debug, Default)]
pub struct EventRing {
    inner: Mutex<RingInner>,
    cond: Condvar,
}

#[derive(Debug, Default)]
struct RingInner {
    /// Sequence number the next published event will get.
    next_seq: u64,
    /// Retained `(seq, event_name, payload)` triples, oldest first.
    items: VecDeque<(u64, &'static str, String)>,
}

impl EventRing {
    /// Appends an event and wakes all waiting streamers.
    pub fn publish(&self, event: &'static str, payload: String) {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.items.len() == SSE_RING_CAP {
            inner.items.pop_front();
        }
        inner.items.push_back((seq, event, payload));
        drop(inner);
        self.cond.notify_all();
    }

    /// Returns every retained event with sequence ≥ `from`, waiting up to
    /// `timeout` for one to arrive; the second component counts events the
    /// caller missed because they were already evicted. An empty result
    /// means the timeout elapsed (heartbeat time).
    pub fn wait_after(
        &self,
        from: u64,
        timeout: Duration,
    ) -> (Vec<(u64, &'static str, String)>, u64) {
        let mut inner = self.inner.lock().unwrap();
        if inner.items.back().is_none_or(|(seq, _, _)| *seq < from) {
            let (guard, _) = self.cond.wait_timeout(inner, timeout).unwrap();
            inner = guard;
        }
        let dropped = match inner.items.front() {
            Some((oldest, _, _)) if *oldest > from => oldest - from,
            _ => 0,
        };
        let events = inner
            .items
            .iter()
            .filter(|(seq, _, _)| *seq >= from)
            .cloned()
            .collect();
        (events, dropped)
    }

    /// Sequence number the next published event will receive.
    pub fn next_seq(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }
}

/// Everything the HTTP handlers read: run identity, the live arm table, the
/// SSE ring, and the scrape/drop counters the ledger tie-in reports.
#[derive(Debug)]
pub struct MonitorState {
    /// Static run description.
    pub run: RunInfo,
    /// The live arm table.
    pub table: Mutex<ArmTable>,
    /// SSE broadcast ring.
    pub events: EventRing,
    /// `/metrics` requests served.
    pub metrics_scrapes: AtomicU64,
    /// `/status` requests served.
    pub status_scrapes: AtomicU64,
    /// Currently connected `/events` clients.
    pub sse_clients: AtomicU64,
    /// Events dropped across all SSE clients (slow-client accounting).
    pub sse_dropped: AtomicU64,
    /// Server-core counters (rejected connections), shared with the
    /// accept loop.
    pub http: std::sync::Arc<crate::http::HttpStats>,
}

impl MonitorState {
    /// Fresh state for a run.
    pub fn new(run: RunInfo) -> Self {
        MonitorState {
            run,
            table: Mutex::new(ArmTable::default()),
            events: EventRing::default(),
            metrics_scrapes: AtomicU64::new(0),
            status_scrapes: AtomicU64::new(0),
            sse_clients: AtomicU64::new(0),
            sse_dropped: AtomicU64::new(0),
            http: std::sync::Arc::new(crate::http::HttpStats::default()),
        }
    }

    /// Total `/metrics` + `/status` scrapes served so far (the figure the
    /// run ledger records as circumstance).
    pub fn scrape_count(&self) -> u64 {
        self.metrics_scrapes.load(Ordering::Relaxed) + self.status_scrapes.load(Ordering::Relaxed)
    }

    /// Applies one runner event: updates the arm table and publishes the
    /// corresponding SSE payload.
    pub fn observe(&self, event: &ArmEvent) {
        match *event {
            ArmEvent::SweepBegin { sweep, total, jobs } => {
                {
                    let mut table = self.table.lock().unwrap();
                    table.current = Some((sweep, total, 0));
                }
                self.events.publish(
                    "sweep_begin",
                    format!("{{\"sweep\":{sweep},\"total\":{total},\"jobs\":{jobs}}}"),
                );
            }
            ArmEvent::ArmStart {
                sweep,
                index,
                seed,
                worker,
            } => {
                {
                    let mut table = self.table.lock().unwrap();
                    table.started += 1;
                    table.worker_mut(worker).running = Some((sweep, index));
                    table.push_arm(ArmState {
                        sweep,
                        index,
                        seed,
                        worker,
                        phase: ArmPhase::Running,
                        wall_ns: 0,
                    });
                }
                self.events.publish(
                    "arm_start",
                    format!(
                        "{{\"sweep\":{sweep},\"index\":{index},\"seed\":{seed},\"worker\":{worker}}}"
                    ),
                );
            }
            ArmEvent::ArmFinish(obs) => {
                let (done, total) = {
                    let mut table = self.table.lock().unwrap();
                    table.finished += 1;
                    let worker = table.worker_mut(obs.worker);
                    worker.busy_ns += obs.wall_ns;
                    worker.arms_finished += 1;
                    if worker.running == Some((obs.sweep, obs.index)) {
                        worker.running = None;
                    }
                    // Mark the matching running row done; if it was already
                    // evicted, append a fresh done row instead.
                    let found = table.arms.iter_mut().rev().find(|arm| {
                        arm.sweep == obs.sweep
                            && arm.index == obs.index
                            && arm.phase == ArmPhase::Running
                    });
                    match found {
                        Some(arm) => {
                            arm.phase = ArmPhase::Done;
                            arm.wall_ns = obs.wall_ns;
                        }
                        None => table.push_arm(ArmState {
                            sweep: obs.sweep,
                            index: obs.index,
                            seed: obs.seed,
                            worker: obs.worker,
                            phase: ArmPhase::Done,
                            wall_ns: obs.wall_ns,
                        }),
                    }
                    match &mut table.current {
                        Some((sweep, total, done)) if *sweep == obs.sweep => {
                            *done += 1;
                            (*done, *total)
                        }
                        _ => (0, 0),
                    }
                };
                self.events.publish(
                    "arm_finish",
                    format!(
                        "{{\"sweep\":{},\"index\":{},\"seed\":{},\"worker\":{},\"wall_ns\":{},\
                         \"done\":{done},\"total\":{total}}}",
                        obs.sweep, obs.index, obs.seed, obs.worker, obs.wall_ns
                    ),
                );
            }
            ArmEvent::SweepEnd { sweep } => {
                self.events
                    .publish("sweep_end", format!("{{\"sweep\":{sweep}}}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mab_runner::ArmObservation;

    fn start(state: &MonitorState, sweep: u32, index: usize, worker: usize) {
        state.observe(&ArmEvent::ArmStart {
            sweep,
            index,
            seed: index as u64 + 100,
            worker,
        });
    }

    fn finish(state: &MonitorState, sweep: u32, index: usize, worker: usize, wall_ns: u64) {
        state.observe(&ArmEvent::ArmFinish(ArmObservation {
            sweep,
            index,
            seed: index as u64 + 100,
            wall_ns,
            worker,
        }));
    }

    #[test]
    fn table_tracks_arm_lifecycle_and_workers() {
        let state = MonitorState::new(RunInfo::default());
        state.observe(&ArmEvent::SweepBegin {
            sweep: 3,
            total: 2,
            jobs: 2,
        });
        start(&state, 3, 0, 0);
        start(&state, 3, 1, 1);
        finish(&state, 3, 0, 0, 500);
        {
            let table = state.table.lock().unwrap();
            assert_eq!(table.started, 2);
            assert_eq!(table.finished, 1);
            assert_eq!(table.current, Some((3, 2, 1)));
            assert_eq!(table.workers[0].busy_ns, 500);
            assert_eq!(table.workers[0].running, None);
            assert_eq!(table.workers[1].running, Some((3, 1)));
            let row = table.arms.iter().find(|a| a.index == 0).unwrap();
            assert_eq!(row.phase, ArmPhase::Done);
            assert_eq!(row.wall_ns, 500);
        }
        finish(&state, 3, 1, 1, 700);
        state.observe(&ArmEvent::SweepEnd { sweep: 3 });
        let table = state.table.lock().unwrap();
        assert_eq!(table.current, Some((3, 2, 2)));
        assert_eq!(table.workers[1].arms_finished, 1);
    }

    #[test]
    fn arm_table_eviction_is_bounded_and_counted() {
        let state = MonitorState::new(RunInfo::default());
        for i in 0..(ARM_TABLE_CAP + 10) {
            start(&state, 0, i, 0);
        }
        let table = state.table.lock().unwrap();
        assert_eq!(table.arms.len(), ARM_TABLE_CAP);
        assert_eq!(table.evicted, 10);
        assert_eq!(table.arms.front().unwrap().index, 10);
    }

    #[test]
    fn event_ring_delivers_and_accounts_drops() {
        let ring = EventRing::default();
        ring.publish("a", "1".to_string());
        ring.publish("b", "2".to_string());
        let (events, dropped) = ring.wait_after(0, Duration::from_millis(1));
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], (0, "a", "1".to_string()));

        // Overflow the ring; a reader still at seq 0 misses the evicted
        // prefix and the gap is reported.
        for i in 0..(SSE_RING_CAP + 5) {
            ring.publish("x", format!("{i}"));
        }
        let (events, dropped) = ring.wait_after(0, Duration::from_millis(1));
        assert_eq!(events.len(), SSE_RING_CAP);
        assert_eq!(dropped, (2 + 5) as u64);
        // A timeout with nothing new returns empty (heartbeat time).
        let next = ring.next_seq();
        let (events, dropped) = ring.wait_after(next, Duration::from_millis(1));
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn finish_after_eviction_appends_a_done_row() {
        let state = MonitorState::new(RunInfo::default());
        start(&state, 0, 0, 0);
        for i in 1..=ARM_TABLE_CAP {
            start(&state, 0, i, 0);
        }
        // Arm 0's running row has been evicted by now.
        finish(&state, 0, 0, 0, 42);
        let table = state.table.lock().unwrap();
        let row = table.arms.back().unwrap();
        assert_eq!(row.index, 0);
        assert_eq!(row.phase, ArmPhase::Done);
        assert_eq!(row.wall_ns, 42);
    }
}
