//! The std-only blocking HTTP/1.1 server core shared by the observability
//! daemons (`mab-monitor`'s in-process endpoints and the `mab-serve` sweep
//! daemon).
//!
//! One accept-loop thread owns the listener; each accepted connection is
//! handled on a short-lived thread bounded by [`HttpConfig::max_connections`]
//! — beyond the cap the connection is answered `503` and closed, so a scrape
//! storm cannot exhaust threads. Routing is a caller-supplied [`Handler`]
//! callback: plain endpoints render a snapshot and close, SSE endpoints keep
//! the [`Conn`] open streaming frames until the client hangs up or the server
//! stops. Shutdown sets a stop flag and pokes the listener with a loopback
//! connect so the blocking `accept` wakes immediately.
//!
//! Both the connection cap and the per-connection IO timeout are
//! configurable through the environment: `MAB_HTTP_CONNS` overrides the cap
//! (default [`MAX_CONNECTIONS`]) and `MAB_HTTP_TIMEOUT_MS` the timeout
//! (default [`IO_TIMEOUT`]). `POST` bodies are read up to `Content-Length`,
//! bounded by [`MAX_BODY_BYTES`] (`413` beyond it).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default maximum concurrently handled connections; the rest get `503`.
pub const MAX_CONNECTIONS: usize = 32;

/// Default per-connection IO (read) timeout.
pub const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Largest accepted request body (1 MiB); longer bodies are answered `413`.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Tunable server limits, resolved once at server start.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Maximum concurrently handled connections (`MAB_HTTP_CONNS`).
    pub max_connections: usize,
    /// Per-connection read timeout (`MAB_HTTP_TIMEOUT_MS`).
    pub io_timeout: Duration,
    /// Name given to the accept-loop thread (connection threads append
    /// `-conn`).
    pub thread_name: String,
}

impl Default for HttpConfig {
    fn default() -> HttpConfig {
        HttpConfig {
            max_connections: MAX_CONNECTIONS,
            io_timeout: IO_TIMEOUT,
            thread_name: "mab-http".to_string(),
        }
    }
}

impl HttpConfig {
    /// Builds a config named `thread_name`, honoring the `MAB_HTTP_CONNS`
    /// and `MAB_HTTP_TIMEOUT_MS` environment overrides (unparsable or zero
    /// values fall back to the defaults).
    pub fn from_env(thread_name: &str) -> HttpConfig {
        let mut config = HttpConfig {
            thread_name: thread_name.to_string(),
            ..HttpConfig::default()
        };
        if let Some(conns) = env_u64("MAB_HTTP_CONNS") {
            config.max_connections = conns as usize;
        }
        if let Some(ms) = env_u64("MAB_HTTP_TIMEOUT_MS") {
            config.io_timeout = Duration::from_millis(ms);
        }
        config
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse::<u64>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

/// Counters the server core maintains across all connections.
#[derive(Debug, Default)]
pub struct HttpStats {
    /// Connections answered `503` because the cap was reached.
    pub rejected_conns: AtomicU64,
}

/// One parsed HTTP request: method, split path/query, and the body (empty
/// unless the client sent `Content-Length`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// The path with any query string stripped (`/status?x=1` → `/status`).
    pub path: String,
    /// The raw query string (empty when absent).
    pub query: String,
    /// The request body (empty for body-less requests).
    pub body: String,
}

impl Request {
    /// Looks up `key` in the query string (`a=1&b=2` form; no decoding).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// The write side of one accepted connection, handed to the [`Handler`].
pub struct Conn {
    stream: TcpStream,
    stop: Arc<AtomicBool>,
}

impl Conn {
    /// Writes a full `Connection: close` response.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures (the client usually hung up).
    pub fn respond(
        &mut self,
        status_line: &str,
        content_type: &str,
        body: &str,
    ) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {status_line}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()
    }

    /// Writes raw bytes (SSE streamers own their framing).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// True once the server is shutting down; long-lived streamers must
    /// poll this and unwind.
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// Per-request routing callback: inspect the [`Request`], answer on the
/// [`Conn`]. Runs on the connection's own thread, so it may block (SSE).
pub type Handler = Arc<dyn Fn(&Request, &mut Conn) + Send + Sync>;

/// A running HTTP server: bound address plus the shutdown handle.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves `:0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it. Streaming connections notice the
    /// stop flag at their next heartbeat and unwind on their own.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the blocking accept so it observes the flag now.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9464`, or port `0` for an ephemeral port)
/// and starts dispatching requests to `handler` on a background thread.
///
/// # Errors
///
/// Returns the bind error when the address is unavailable.
pub fn serve_with(
    addr: &str,
    config: HttpConfig,
    stats: Arc<HttpStats>,
    stop: Arc<AtomicBool>,
    handler: Handler,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let accept_stop = Arc::clone(&stop);
    let conn_thread_name = format!("{}-conn", config.thread_name);
    let accept_thread = std::thread::Builder::new()
        .name(config.thread_name.clone())
        .spawn(move || {
            let active = Arc::new(AtomicUsize::new(0));
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                if active.load(Ordering::SeqCst) >= config.max_connections {
                    stats.rejected_conns.fetch_add(1, Ordering::Relaxed);
                    let mut conn = Conn {
                        stream,
                        stop: Arc::clone(&accept_stop),
                    };
                    let _ = conn.respond(
                        "503 Service Unavailable",
                        "text/plain; charset=utf-8",
                        "connection cap reached\n",
                    );
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                let stop = Arc::clone(&accept_stop);
                let conn_active = Arc::clone(&active);
                let handler = Arc::clone(&handler);
                let io_timeout = config.io_timeout;
                let spawned = std::thread::Builder::new()
                    .name(conn_thread_name.clone())
                    .spawn(move || {
                        handle_connection(stream, io_timeout, stop, handler);
                        conn_active.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    active.fetch_sub(1, Ordering::SeqCst);
                }
            }
        })?;
    Ok(ServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
    })
}

fn handle_connection(
    stream: TcpStream,
    io_timeout: Duration,
    stop: Arc<AtomicBool>,
    handler: Handler,
) {
    // Bound header/body reads so a half-open client cannot pin the thread.
    let _ = stream.set_read_timeout(Some(io_timeout));
    let mut conn = Conn { stream, stop };
    match read_request(&conn.stream) {
        Ok(Some(request)) => handler(&request, &mut conn),
        Ok(None) => {}
        Err(status_line) => {
            let _ = conn.respond(status_line, "text/plain; charset=utf-8", "bad request\n");
        }
    }
}

/// Reads one request (line, headers, body). `Ok(None)` means the client
/// hung up before sending anything useful; `Err` carries the status line to
/// answer with.
fn read_request(stream: &TcpStream) -> Result<Option<Request>, &'static str> {
    let Ok(clone) = stream.try_clone() else {
        return Ok(None);
    };
    let mut reader = BufReader::new(clone);
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Ok(None);
    };
    let method = method.to_string();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    // Drain headers until the blank line, capturing Content-Length.
    let mut content_length: usize = 0;
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {
                if let Some((name, value)) = header.split_once(':') {
                    if name.eq_ignore_ascii_case("content-length") {
                        content_length = value.trim().parse().unwrap_or(0);
                    }
                }
            }
            Err(_) => return Ok(None),
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err("413 Payload Too Large");
    }
    let mut body = String::new();
    if content_length > 0 {
        let mut buf = vec![0u8; content_length];
        if reader.read_exact(&mut buf).is_err() {
            return Ok(None);
        }
        body = String::from_utf8_lossy(&buf).into_owned();
    }
    Ok(Some(Request {
        method,
        path,
        query,
        body,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_env_overrides_parse_and_fall_back() {
        // Not set → defaults (the test env never sets these globally).
        let config = HttpConfig::from_env("t");
        assert_eq!(config.max_connections, MAX_CONNECTIONS);
        assert_eq!(config.io_timeout, IO_TIMEOUT);
        assert_eq!(config.thread_name, "t");
    }

    #[test]
    fn query_params_split() {
        let req = Request {
            method: "GET".to_string(),
            path: "/jobs".to_string(),
            query: "arm=3&client=a".to_string(),
            body: String::new(),
        };
        assert_eq!(req.query_param("arm"), Some("3"));
        assert_eq!(req.query_param("client"), Some("a"));
        assert_eq!(req.query_param("nope"), None);
    }

    #[test]
    fn post_bodies_round_trip_through_the_core() {
        let stats = Arc::new(HttpStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let handler: Handler = Arc::new(|req, conn| {
            let body = format!("{} {} q={} [{}]", req.method, req.path, req.query, req.body);
            let _ = conn.respond("200 OK", "text/plain; charset=utf-8", &body);
        });
        let mut server =
            serve_with("127.0.0.1:0", HttpConfig::default(), stats, stop, handler).unwrap();
        let url = format!("http://{}/echo?x=1", server.addr());
        let resp = crate::client::post(&url, "{\"k\":2}", Duration::from_secs(5)).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "POST /echo q=x=1 [{\"k\":2}]");
        server.shutdown();
    }
}
