//! The std-only blocking HTTP/1.1 server behind the monitor endpoints.
//!
//! One accept-loop thread owns the listener; each accepted connection is
//! handled on a short-lived thread (bounded by [`MAX_CONNECTIONS`] — beyond
//! the cap the connection is answered `503` and closed, so a scrape storm
//! cannot exhaust threads). `/metrics` and `/status` render a snapshot and
//! close; `/events` stays open streaming SSE frames until the client hangs
//! up or the server stops. Shutdown sets a stop flag and pokes the listener
//! with a loopback connect so the blocking `accept` wakes immediately.

use crate::state::MonitorState;
use crate::{metrics, sse, status};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Maximum concurrently handled connections; the rest get `503`.
pub const MAX_CONNECTIONS: usize = 32;

/// A running HTTP server: bound address plus the shutdown handle.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves `:0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it. Streaming connections notice the
    /// stop flag at their next heartbeat and unwind on their own.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the blocking accept so it observes the flag now.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9464`, or port `0` for an ephemeral port)
/// and starts serving `state` on a background thread.
///
/// # Errors
///
/// Returns the bind error when the address is unavailable.
pub fn serve(
    state: Arc<MonitorState>,
    addr: &str,
    stop: Arc<AtomicBool>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("mab-monitor".to_string())
        .spawn(move || {
            let active = Arc::new(AtomicUsize::new(0));
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                if active.load(Ordering::SeqCst) >= MAX_CONNECTIONS {
                    state.rejected_conns.fetch_add(1, Ordering::Relaxed);
                    let _ = respond(
                        &stream,
                        "503 Service Unavailable",
                        "text/plain; charset=utf-8",
                        "connection cap reached\n",
                    );
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                let state = Arc::clone(&state);
                let stop = Arc::clone(&accept_stop);
                let conn_active = Arc::clone(&active);
                let spawned = std::thread::Builder::new()
                    .name("mab-monitor-conn".to_string())
                    .spawn(move || {
                        handle_connection(stream, &state, &stop);
                        conn_active.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    active.fetch_sub(1, Ordering::SeqCst);
                }
            }
        })?;
    Ok(ServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
    })
}

fn handle_connection(stream: TcpStream, state: &MonitorState, stop: &AtomicBool) {
    // Bound header reads so a half-open client cannot pin the thread.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let Some((method, path)) = read_request(&stream) else {
        return;
    };
    if method != "GET" {
        let _ = respond(
            &stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        );
        return;
    }
    // Ignore any query string: /status?x=1 serves /status.
    match path.split('?').next().unwrap_or("") {
        "/metrics" => {
            state.metrics_scrapes.fetch_add(1, Ordering::Relaxed);
            let _ = respond(
                &stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &metrics::render(state),
            );
        }
        "/status" => {
            state.status_scrapes.fetch_add(1, Ordering::Relaxed);
            let mut body = status::render(state);
            body.push('\n');
            let _ = respond(&stream, "200 OK", "application/json", &body);
        }
        "/events" => sse::stream(stream, state, stop),
        "/" | "/healthz" => {
            let _ = respond(&stream, "200 OK", "text/plain; charset=utf-8", "ok\n");
        }
        _ => {
            let _ = respond(
                &stream,
                "404 Not Found",
                "text/plain; charset=utf-8",
                "unknown path; try /metrics, /status or /events\n",
            );
        }
    }
}

/// Reads the request line and drains the headers; returns `(method, path)`.
fn read_request(stream: &TcpStream) -> Option<(String, String)> {
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    // Drain headers until the blank line (values are irrelevant to GET).
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => continue,
            Err(_) => return None,
        }
    }
    Some((method, path))
}

fn respond(
    mut stream: &TcpStream,
    status_line: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status_line}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes raw bytes (used by the SSE streamer, which owns its framing).
pub(crate) fn write_raw(stream: &mut TcpStream, bytes: &[u8]) -> std::io::Result<()> {
    stream.write_all(bytes)?;
    stream.flush()
}

/// Reads an entire `Connection: close` response (used only by tests and the
/// in-crate client).
#[allow(dead_code)]
pub(crate) fn read_to_string(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut text = String::new();
    stream.read_to_string(&mut text)?;
    Ok(text)
}
