//! A minimal std-only HTTP/SSE client for the monitor's own endpoints.
//!
//! Used by `mab-inspect watch`, the e2e tests and the overhead benchmark —
//! the workspace is offline, so the client speaks just enough HTTP/1.1 to
//! talk to [`crate::http`]: one `GET` per connection (`Connection: close`)
//! and a line-oriented SSE reader for `/events`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A fetched response: status code and body (headers are dropped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Numeric status code (200, 404, ...).
    pub status: u16,
    /// Response body.
    pub body: String,
}

/// Splits `http://host:port/path` into `(authority, path)`.
pub fn split_url(url: &str) -> Option<(&str, &str)> {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    match rest.find('/') {
        Some(i) => Some((&rest[..i], &rest[i..])),
        None => Some((rest, "/")),
    }
}

/// Fetches `url` with a blocking `GET`, honoring `timeout` for connect and
/// reads.
///
/// # Errors
///
/// Propagates connect/read failures; malformed responses surface as
/// `InvalidData`.
pub fn get(url: &str, timeout: Duration) -> std::io::Result<HttpResponse> {
    request("GET", url, None, timeout)
}

/// Posts `body` (sent as `application/json`) to `url` with a blocking
/// request, honoring `timeout` for connect and reads.
///
/// # Errors
///
/// Propagates connect/read failures; malformed responses surface as
/// `InvalidData`.
pub fn post(url: &str, body: &str, timeout: Duration) -> std::io::Result<HttpResponse> {
    request("POST", url, Some(body), timeout)
}

fn request(
    method: &str,
    url: &str,
    body: Option<&str>,
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    let (authority, path) = split_url(url)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad url"))?;
    let mut stream = connect(authority, timeout)?;
    let mut head =
        format!("{method} {path} HTTP/1.1\r\nHost: {authority}\r\nConnection: close\r\n");
    if let Some(body) = body {
        head.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            body.len()
        ));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if let Some(body) = body {
        stream.write_all(body.as_bytes())?;
    }
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

fn connect(authority: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let addr: std::net::SocketAddr = authority
        .parse()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("{e}")))?;
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    Ok(stream)
}

fn parse_response(raw: &str) -> Option<HttpResponse> {
    let (head, body) = raw.split_once("\r\n\r\n")?;
    let status = head.split_whitespace().nth(1)?.parse().ok()?;
    Some(HttpResponse {
        status,
        body: body.to_string(),
    })
}

/// One parsed SSE frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SseFrame {
    /// The `id:` field, when the frame carried one.
    pub id: Option<u64>,
    /// The `event:` field; `"comment"` for `:`-prefixed keep-alives.
    pub event: String,
    /// The `data:` payload (or the comment text).
    pub data: String,
    /// The `retry:` reconnection hint in milliseconds, when the frame
    /// carried one (servers send it at stream start; `mab-inspect watch`
    /// seeds its reconnect backoff from it).
    pub retry_ms: Option<u64>,
}

/// A connected `/events` subscriber.
pub struct SseClient {
    reader: BufReader<TcpStream>,
}

impl SseClient {
    /// Connects to an `/events` URL and consumes the response headers.
    ///
    /// # Errors
    ///
    /// Propagates connect failures; a non-SSE response is `InvalidData`.
    pub fn connect(url: &str, timeout: Duration) -> std::io::Result<SseClient> {
        let (authority, path) = split_url(url)
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad url"))?;
        let mut stream = connect(authority, timeout)?;
        let request = format!(
            "GET {path} HTTP/1.1\r\nHost: {authority}\r\nAccept: text/event-stream\r\n\r\n"
        );
        stream.write_all(request.as_bytes())?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line)?;
        if !line.contains("200") {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected status: {}", line.trim()),
            ));
        }
        loop {
            line.clear();
            let n = reader.read_line(&mut line)?;
            if n == 0 || line == "\r\n" || line == "\n" {
                break;
            }
        }
        Ok(SseClient { reader })
    }

    /// Reads the next frame; `Ok(None)` on orderly EOF. Read timeouts
    /// surface as errors (`WouldBlock`/`TimedOut`), letting callers poll.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and read timeouts.
    pub fn next_frame(&mut self) -> std::io::Result<Option<SseFrame>> {
        let mut frame = SseFrame {
            id: None,
            event: String::new(),
            data: String::new(),
            retry_ms: None,
        };
        let mut saw_field = false;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            let line = line.trim_end_matches(['\r', '\n']);
            if line.is_empty() {
                if saw_field {
                    return Ok(Some(frame));
                }
                continue;
            }
            saw_field = true;
            if let Some(comment) = line.strip_prefix(':') {
                frame.event = "comment".to_string();
                frame.data = comment.trim().to_string();
            } else if let Some(id) = line.strip_prefix("id:") {
                frame.id = id.trim().parse().ok();
            } else if let Some(event) = line.strip_prefix("event:") {
                frame.event = event.trim().to_string();
            } else if let Some(data) = line.strip_prefix("data:") {
                frame.data = data.trim().to_string();
            } else if let Some(retry) = line.strip_prefix("retry:") {
                frame.event = "retry".to_string();
                frame.retry_ms = retry.trim().parse().ok();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_url_handles_paths_and_bare_hosts() {
        assert_eq!(
            split_url("http://127.0.0.1:9464/metrics"),
            Some(("127.0.0.1:9464", "/metrics"))
        );
        assert_eq!(split_url("127.0.0.1:9464"), Some(("127.0.0.1:9464", "/")));
    }

    #[test]
    fn parse_response_extracts_status_and_body() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n\r\nhello";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "hello");
        assert!(parse_response("garbage").is_none());
    }
}
