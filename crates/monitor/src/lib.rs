//! `mab-monitor`: the in-process live monitoring plane.
//!
//! Every other observability surface in this workspace (telemetry JSONL,
//! decision traces, span profiles, the run ledger) is post-hoc — nothing is
//! visible until the run finishes and files land on disk. This crate adds
//! the live side: a dependency-free, std-only HTTP server that runs inside
//! an experiment binary (enabled with `--monitor ADDR` / `MAB_MONITOR`) and
//! exposes
//!
//! - `GET /metrics` — Prometheus text exposition rendered from live
//!   snapshots of the telemetry counter/histogram registry plus sweep-level
//!   gauges (arms completed/total, ETA, per-worker utilization, ring drop
//!   counts);
//! - `GET /status` — a JSON document with the run identity (experiment,
//!   ledger config digest, code version), live sweep figures, and the
//!   per-arm state table fed by `mab-runner`'s observer hooks;
//! - `GET /events` — a Server-Sent-Events stream of sweep/arm lifecycle
//!   events with heartbeats and slow-client drop accounting.
//!
//! # Invariants
//!
//! The monitor is **read-only over snapshots**: scrapes read the sharded
//! counters with relaxed loads, the sweep-progress cell through its seqlock,
//! and the arm table under a short mutex that only the arm-granularity
//! observer ever writes — no lock is taken on any per-cycle simulation
//! path, and nothing is written to stdout, so experiment output stays
//! byte-identical with monitoring on or off at any `--jobs` setting.
//!
//! By default the server binds `127.0.0.1` (loopback only); binding a
//! routable address is an explicit opt-in and exposes run metadata to the
//! network — see DESIGN.md's security note.
//!
//! This crate is the substrate ROADMAP item 1 (`mab-serve`) mounts its job
//! API onto: the accept loop, bounded connections, and snapshot discipline
//! are exactly the serving constraints that API needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod metrics;
pub mod sse;
pub mod state;
pub mod status;

pub use http::{HttpConfig, HttpStats, IO_TIMEOUT, MAX_CONNECTIONS};
pub use state::{ArmPhase, ArmState, EventRing, MonitorState, RunInfo};

use mab_runner::ObserverId;
use std::net::SocketAddr;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Default bind address: loopback, ephemeral port.
pub const DEFAULT_ADDR: &str = "127.0.0.1:0";

/// A running monitor: HTTP server plus the runner observer feeding it.
///
/// Dropping (or [`Monitor::shutdown`]) deregisters the observer and stops
/// the server.
pub struct Monitor {
    state: Arc<MonitorState>,
    server: http::ServerHandle,
    observer: Option<ObserverId>,
}

impl Monitor {
    /// Binds `addr` (`host:port`; port `0` picks an ephemeral port) and
    /// starts monitoring `run`. Registers a `mab-runner` event observer so
    /// sweeps feed the live endpoints from this call on.
    ///
    /// # Errors
    ///
    /// Returns the bind error when `addr` is unavailable or malformed.
    pub fn start(addr: &str, run: RunInfo) -> std::io::Result<Monitor> {
        let state = Arc::new(MonitorState::new(run));
        let stop = Arc::new(AtomicBool::new(false));
        let route_state = Arc::clone(&state);
        let handler: http::Handler = Arc::new(move |req, conn| route(&route_state, req, conn));
        let server = http::serve_with(
            addr,
            http::HttpConfig::from_env("mab-monitor"),
            Arc::clone(&state.http),
            stop,
            handler,
        )?;
        let observer_state = Arc::clone(&state);
        let observer = mab_runner::add_observer(Arc::new(move |event| {
            observer_state.observe(event);
        }));
        Ok(Monitor {
            state,
            server,
            observer: Some(observer),
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// The server's base URL, e.g. `http://127.0.0.1:9464`.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr())
    }

    /// The shared state (tests and embedders read it directly).
    pub fn state(&self) -> &Arc<MonitorState> {
        &self.state
    }

    /// Total `/metrics` + `/status` scrapes served so far.
    pub fn scrape_count(&self) -> u64 {
        self.state.scrape_count()
    }

    /// Deregisters the observer and stops the server, returning the final
    /// scrape count for ledger recording.
    pub fn shutdown(mut self) -> u64 {
        self.stop();
        self.state.scrape_count()
    }

    fn stop(&mut self) {
        if let Some(id) = self.observer.take() {
            mab_runner::remove_observer(id);
        }
        self.server.shutdown();
    }
}

impl Drop for Monitor {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Routes one request to the monitor's read-only endpoints.
fn route(state: &MonitorState, req: &http::Request, conn: &mut http::Conn) {
    use std::sync::atomic::Ordering;
    if req.method != "GET" {
        let _ = conn.respond(
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        );
        return;
    }
    match req.path.as_str() {
        "/metrics" => {
            state.metrics_scrapes.fetch_add(1, Ordering::Relaxed);
            let _ = conn.respond(
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &metrics::render(state),
            );
        }
        "/status" => {
            state.status_scrapes.fetch_add(1, Ordering::Relaxed);
            let mut body = status::render(state);
            body.push('\n');
            let _ = conn.respond("200 OK", "application/json", &body);
        }
        "/events" => sse::stream(conn, state),
        "/" | "/healthz" => {
            let _ = conn.respond("200 OK", "text/plain; charset=utf-8", "ok\n");
        }
        _ => {
            let _ = conn.respond(
                "404 Not Found",
                "text/plain; charset=utf-8",
                "unknown path; try /metrics, /status or /events\n",
            );
        }
    }
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("addr", &self.addr())
            .field("scrapes", &self.scrape_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn monitor_serves_all_endpoints() {
        let monitor = Monitor::start(
            DEFAULT_ADDR,
            RunInfo {
                experiment: "unit".to_string(),
                digest: "abcd".to_string(),
                code: "0.1.0+test".to_string(),
                jobs: 1,
                started_unix: 0,
            },
        )
        .unwrap();
        let timeout = Duration::from_secs(5);
        let url = monitor.url();

        let health = client::get(&format!("{url}/healthz"), timeout).unwrap();
        assert_eq!(health.status, 200);

        let metrics = client::get(&format!("{url}/metrics"), timeout).unwrap();
        assert_eq!(metrics.status, 200);
        assert!(metrics.body.contains("mab_run_info"), "{}", metrics.body);

        let status = client::get(&format!("{url}/status"), timeout).unwrap();
        assert_eq!(status.status, 200);
        let doc = mab_ledger::json::parse(status.body.trim()).unwrap();
        assert_eq!(doc.get("experiment").unwrap().as_str(), Some("unit"));

        let missing = client::get(&format!("{url}/nope"), timeout).unwrap();
        assert_eq!(missing.status, 404);

        // Scrape accounting: one /metrics + one /status counted.
        assert_eq!(monitor.scrape_count(), 2);
        assert_eq!(monitor.shutdown(), 2);
    }

    #[test]
    fn sse_stream_delivers_events_and_heartbeats() {
        let monitor = Monitor::start(DEFAULT_ADDR, RunInfo::default()).unwrap();
        let timeout = Duration::from_secs(5);
        let mut sub =
            client::SseClient::connect(&format!("{}/events", monitor.url()), timeout).unwrap();
        monitor.state().events.publish(
            "arm_start",
            "{\"sweep\":0,\"index\":1,\"seed\":2,\"worker\":0}".to_string(),
        );

        let mut saw_event = false;
        let mut saw_heartbeat = false;
        for _ in 0..10 {
            match sub.next_frame() {
                Ok(Some(frame)) => {
                    if frame.event == "arm_start" {
                        assert!(frame.data.contains("\"index\":1"), "{frame:?}");
                        assert!(frame.id.is_some(), "{frame:?}");
                        saw_event = true;
                    }
                    if frame.event == "comment" && frame.data == "heartbeat" {
                        saw_heartbeat = true;
                    }
                    if saw_event && saw_heartbeat {
                        break;
                    }
                }
                Ok(None) => break,
                Err(_) => break,
            }
        }
        assert!(saw_event, "never saw the published arm_start");
        assert!(saw_heartbeat, "never saw a heartbeat comment");
        drop(sub);
        monitor.shutdown();
    }

    #[test]
    fn shutdown_is_prompt_and_port_is_released() {
        let monitor = Monitor::start(DEFAULT_ADDR, RunInfo::default()).unwrap();
        let addr = monitor.addr();
        monitor.shutdown();
        // The port can be rebound immediately after shutdown.
        let rebound = std::net::TcpListener::bind(addr);
        assert!(rebound.is_ok(), "{rebound:?}");
    }
}
