//! Prometheus text-exposition rendering for `GET /metrics`.
//!
//! The page is assembled from read-only snapshots: the sharded-counter sums
//! and histogram bucket loads from the installed `mab-telemetry` recorder
//! (relaxed loads, no locks), the seqlock'd live sweep cell, and one short
//! lock of the monitor's arm table. Counter metrics follow the `_total`
//! naming convention; histograms are emitted with cumulative `le` buckets
//! exactly as the exposition format requires. ETA and rate figures come
//! from [`mab_telemetry::live`] — the same arithmetic that renders the
//! stderr progress line, so the two planes can never disagree.

use crate::state::MonitorState;
use mab_telemetry::hist::BUCKETS;
use mab_telemetry::live::{self, LiveSweep};
use mab_telemetry::{Hist, Recorder, Stat};
use std::sync::atomic::Ordering;

/// Renders the full exposition page from the live globals.
pub fn render(state: &MonitorState) -> String {
    render_parts(state, mab_telemetry::recorder(), live::sweep_snapshot())
}

/// Renders the exposition page from explicit parts (testable seam: golden
/// tests construct their own recorder and sweep snapshot).
pub fn render_parts(
    state: &MonitorState,
    recorder: Option<&Recorder>,
    sweep: Option<LiveSweep>,
) -> String {
    let mut out = String::with_capacity(4096);

    out.push_str("# HELP mab_run_info Static description of the monitored run.\n");
    out.push_str("# TYPE mab_run_info gauge\n");
    out.push_str(&format!(
        "mab_run_info{{experiment=\"{}\",digest=\"{}\",code=\"{}\"}} 1\n",
        escape_label(&state.run.experiment),
        escape_label(&state.run.digest),
        escape_label(&state.run.code),
    ));
    gauge(
        &mut out,
        "mab_run_jobs",
        "Configured worker count.",
        state.run.jobs as f64,
    );

    // Sweep-level gauges from the seqlock cell.
    if let Some(snap) = sweep {
        let elapsed = snap.elapsed_secs();
        gauge(
            &mut out,
            "mab_sweep_arms_total",
            "Arms in the current sweep.",
            snap.total as f64,
        );
        gauge(
            &mut out,
            "mab_sweep_arms_completed",
            "Arms completed in the current sweep.",
            snap.done as f64,
        );
        gauge(
            &mut out,
            "mab_sweep_active",
            "1 while a sweep is in flight.",
            if snap.active { 1.0 } else { 0.0 },
        );
        let rate = live::rate_per_sec(snap.done, elapsed);
        gauge(
            &mut out,
            "mab_sweep_rate_runs_per_second",
            "Completed runs per second.",
            rate,
        );
        if let Some(eta) = live::eta_seconds(snap.done, snap.total, elapsed) {
            gauge(
                &mut out,
                "mab_sweep_eta_seconds",
                "Estimated seconds until the sweep completes.",
                eta,
            );
        }
    }

    // Per-worker utilization and monitor self-accounting from the arm table.
    {
        let table = state.table.lock().unwrap();
        out.push_str("# HELP mab_worker_busy_seconds_total Seconds spent inside completed arms.\n");
        out.push_str("# TYPE mab_worker_busy_seconds_total counter\n");
        for (worker, w) in table.workers.iter().enumerate() {
            out.push_str(&format!(
                "mab_worker_busy_seconds_total{{worker=\"{worker}\"}} {}\n",
                fmt_value(w.busy_ns as f64 / 1e9)
            ));
        }
        out.push_str("# HELP mab_worker_arms_total Arms completed per worker.\n");
        out.push_str("# TYPE mab_worker_arms_total counter\n");
        for (worker, w) in table.workers.iter().enumerate() {
            out.push_str(&format!(
                "mab_worker_arms_total{{worker=\"{worker}\"}} {}\n",
                w.arms_finished
            ));
        }
        counter(
            &mut out,
            "mab_monitor_arm_rows_evicted_total",
            "Arm-table rows evicted to stay under the cap.",
            table.evicted as f64,
        );
    }
    counter(
        &mut out,
        "mab_monitor_scrapes_total",
        "Metrics and status scrapes served.",
        state.scrape_count() as f64,
    );
    gauge(
        &mut out,
        "mab_monitor_sse_clients",
        "Currently connected /events clients.",
        state.sse_clients.load(Ordering::Relaxed) as f64,
    );
    counter(
        &mut out,
        "mab_monitor_sse_dropped_total",
        "Events dropped across slow /events clients.",
        state.sse_dropped.load(Ordering::Relaxed) as f64,
    );
    counter(
        &mut out,
        "mab_monitor_rejected_connections_total",
        "Connections turned away at the connection cap.",
        state.http.rejected_conns.load(Ordering::Relaxed) as f64,
    );

    // Telemetry registry: counters, ring drop accounting, histograms.
    if let Some(rec) = recorder {
        for stat in Stat::ALL {
            let name = format!("mab_{}_total", sanitize_name(stat.name()));
            counter(
                &mut out,
                &name,
                "Telemetry counter.",
                rec.counters().sum(stat) as f64,
            );
        }
        counter(
            &mut out,
            "mab_event_ring_dropped_total",
            "Telemetry events evicted from the ring.",
            rec.ring().dropped() as f64,
        );
        counter(
            &mut out,
            "mab_trace_ring_dropped_total",
            "Decision records evicted from the trace ring.",
            rec.trace().dropped() as f64,
        );
        for hist in Hist::ALL {
            render_histogram(&mut out, rec, hist);
        }
    }
    out
}

/// Emits one Prometheus histogram with cumulative `le` buckets in display
/// units (micro-unit histograms are scaled back to their natural units).
fn render_histogram(out: &mut String, rec: &Recorder, hist: Hist) {
    let name = format!("mab_{}", sanitize_name(hist.name()));
    let h = rec.hist(hist);
    let counts = h.bucket_counts();
    out.push_str(&format!("# HELP {name} Telemetry histogram.\n"));
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (i, count) in counts.iter().enumerate().take(BUCKETS - 1) {
        cumulative += count;
        // Skip long runs of empty high buckets but always keep the first
        // bucket and any bucket that changes the cumulative count.
        if *count == 0 && i > 0 && i < BUCKETS - 1 {
            continue;
        }
        let upper = if i == 0 {
            0.0
        } else {
            (1u64 << i) as f64 - 1.0
        };
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
            fmt_value(rec.hist_display(hist, upper))
        ));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
    let sum = h.mean() * h.count() as f64;
    out.push_str(&format!(
        "{name}_sum {}\n",
        fmt_value(rec.hist_display(hist, sum))
    ));
    out.push_str(&format!("{name}_count {}\n", h.count()));
}

/// Appends one gauge metric (`# HELP` / `# TYPE` / sample) to the page.
/// Public so other exposition surfaces (`mab-serve`'s `/metrics`) render
/// with the exact same conventions as the monitor.
pub fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {}\n",
        fmt_value(value)
    ));
}

/// Appends one counter metric (`# HELP` / `# TYPE` / sample) to the page.
pub fn counter(out: &mut String, name: &str, help: &str, value: f64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} counter\n{name} {}\n",
        fmt_value(value)
    ));
}

/// Formats a sample value: integral values render without a fraction,
/// non-finite values as Prometheus' `NaN`/`+Inf`/`-Inf` tokens.
pub fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        }
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Maps an arbitrary identifier onto the Prometheus metric-name alphabet
/// `[a-zA-Z0-9_:]`, replacing invalid characters with `_` and prefixing a
/// `_` when the first character is a digit.
pub fn sanitize_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 1);
    for (i, ch) in raw.chars().enumerate() {
        let valid = ch.is_ascii_alphanumeric() || ch == '_' || ch == ':';
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
        }
        out.push(if valid { ch } else { '_' });
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline.
pub fn escape_label(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::RunInfo;
    use mab_telemetry::RecorderConfig;

    /// Minimal exposition-format validator: every non-comment line is
    /// `name[{labels}] value`, names are in the legal alphabet, label
    /// values are properly quoted.
    fn assert_parses(page: &str) {
        for line in page.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (series, value) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("no value: {line}"));
            let name = series.split('{').next().unwrap();
            assert!(
                !name.is_empty()
                    && name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
                    && !name.starts_with(|c: char| c.is_ascii_digit()),
                "bad metric name in: {line}"
            );
            if let Some(rest) = series.strip_prefix(name) {
                if !rest.is_empty() {
                    assert!(
                        rest.starts_with('{') && rest.ends_with('}'),
                        "bad labels: {line}"
                    );
                }
            }
            assert!(
                value.parse::<f64>().is_ok() || matches!(value, "NaN" | "+Inf" | "-Inf"),
                "bad value in: {line}"
            );
        }
    }

    #[test]
    fn sanitize_name_covers_the_edge_cases() {
        assert_eq!(sanitize_name("arm_pulls"), "arm_pulls");
        assert_eq!(sanitize_name("mab.foo-bar"), "mab_foo_bar");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("a:b"), "a:b");
        assert_eq!(sanitize_name("héllo métric"), "h_llo_m_tric");
    }

    #[test]
    fn escape_label_covers_the_edge_cases() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b"), "a\\\"b");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("a\nb"), "a\\nb");
    }

    #[test]
    fn golden_exposition_page() {
        let state = MonitorState::new(RunInfo {
            experiment: "fig08 \"quoted\"".to_string(),
            digest: "0123456789abcdef".to_string(),
            code: "0.1.0+abc1234".to_string(),
            jobs: 8,
            started_unix: 0,
        });
        let rec = Recorder::new(RecorderConfig::default());
        rec.counters().add(Stat::ArmPulls, 42);
        rec.hist(Hist::MissLatency).record(3);
        rec.hist(Hist::MissLatency).record(200);
        let sweep = LiveSweep {
            done: 16,
            total: 64,
            started_ns: 0,
            active: true,
        };
        let page = render_parts(&state, Some(&rec), Some(sweep));
        assert_parses(&page);

        // Info gauge carries escaped labels.
        assert!(
            page.contains("mab_run_info{experiment=\"fig08 \\\"quoted\\\"\",digest=\"0123456789abcdef\",code=\"0.1.0+abc1234\"} 1"),
            "{page}"
        );
        // Sweep gauges are present.
        assert!(page.contains("mab_sweep_arms_total 64"), "{page}");
        assert!(page.contains("mab_sweep_arms_completed 16"), "{page}");
        assert!(page.contains("mab_sweep_active 1"), "{page}");
        // Counters follow the _total convention.
        assert!(page.contains("mab_arm_pulls_total 42"), "{page}");
        assert!(page.contains("mab_sweep_panics_total 0"), "{page}");
        // Ring drop accounting.
        assert!(page.contains("mab_event_ring_dropped_total 0"), "{page}");
        assert!(page.contains("mab_trace_ring_dropped_total 0"), "{page}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_close_with_inf() {
        let state = MonitorState::new(RunInfo::default());
        let rec = Recorder::new(RecorderConfig::default());
        // Raw-unit histogram: values 3 and 200 land in le=3 and le=255.
        rec.hist(Hist::MissLatency).record(3);
        rec.hist(Hist::MissLatency).record(200);
        let page = render_parts(&state, Some(&rec), None);
        assert_parses(&page);
        assert!(
            page.contains("mab_miss_latency_bucket{le=\"3\"} 1"),
            "{page}"
        );
        assert!(
            page.contains("mab_miss_latency_bucket{le=\"255\"} 2"),
            "{page}"
        );
        assert!(
            page.contains("mab_miss_latency_bucket{le=\"+Inf\"} 2"),
            "{page}"
        );
        assert!(page.contains("mab_miss_latency_sum 203"), "{page}");
        assert!(page.contains("mab_miss_latency_count 2"), "{page}");

        // Cumulative counts never decrease down the page.
        let mut last = 0u64;
        for line in page
            .lines()
            .filter(|l| l.starts_with("mab_miss_latency_bucket"))
        {
            let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v as u64 >= last, "non-cumulative: {line}");
            last = v as u64;
        }
    }

    #[test]
    fn eta_gauge_appears_only_once_estimable() {
        let state = MonitorState::new(RunInfo::default());
        // No completions yet: rate renders 0, ETA is omitted entirely.
        let fresh = LiveSweep {
            done: 0,
            total: 64,
            started_ns: 0,
            active: true,
        };
        let page = render_parts(&state, None, Some(fresh));
        assert_parses(&page);
        assert!(page.contains("mab_sweep_rate_runs_per_second 0"), "{page}");
        assert!(!page.contains("mab_sweep_eta_seconds"), "{page}");
    }

    #[test]
    fn page_without_recorder_or_sweep_still_parses() {
        let state = MonitorState::new(RunInfo::default());
        let page = render_parts(&state, None, None);
        assert_parses(&page);
        assert!(page.contains("mab_monitor_scrapes_total 0"), "{page}");
        assert!(!page.contains("mab_arm_pulls_total"), "{page}");
    }
}
