//! SMT pipeline parameters (paper Table 5, the SecSMT configuration).

use serde::{Deserialize, Serialize};

/// Parameters of the simulated 2-way SMT core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmtParams {
    /// Instructions fetched per cycle from the selected thread
    /// (Table 5's 16-byte fetch ≈ 4 x86 instructions).
    pub fetch_width: u32,
    /// Instructions renamed/dispatched per cycle (5 uops).
    pub decode_width: u32,
    /// Instructions issued per cycle (8 uops).
    pub issue_width: u32,
    /// Instructions committed per cycle (8 uops).
    pub commit_width: u32,
    /// Shared instruction-queue entries.
    pub iq_size: u32,
    /// Shared reorder-buffer entries.
    pub rob_size: u32,
    /// Shared load-queue entries.
    pub lq_size: u32,
    /// Shared store-queue entries.
    pub sq_size: u32,
    /// Shared integer physical registers.
    pub irf_size: u32,
    /// Shared floating-point physical registers.
    pub frf_size: u32,
    /// Per-thread fetch-buffer (front-end queue) entries.
    pub fetch_buffer: u32,
    /// Load latencies by class: L1 hit, L2 hit, memory.
    pub load_latency: [u32; 3],
    /// Extra cycles a memory-class store holds its SQ entry after commit.
    pub store_drain_latency: u32,
    /// Long-latency ALU operation latency (FP divide and friends).
    pub long_alu_latency: u32,
    /// Front-end refill penalty after a mispredicted branch.
    pub mispredict_penalty: u32,
    /// How many of the oldest un-issued instructions the scheduler scans
    /// per thread per cycle.
    pub scheduler_window: usize,
    /// Hill-Climbing epoch length in cycles (64k in Table 6).
    pub epoch_cycles: u64,
}

impl Default for SmtParams {
    /// Table 5: Skylake-like SMT core at 3.3 GHz, 4 MB L2, no L3.
    fn default() -> Self {
        SmtParams {
            fetch_width: 4,
            decode_width: 5,
            issue_width: 8,
            commit_width: 8,
            iq_size: 97,
            rob_size: 224,
            lq_size: 72,
            sq_size: 56,
            irf_size: 180,
            frf_size: 164,
            fetch_buffer: 16,
            load_latency: [4, 18, 160],
            store_drain_latency: 40,
            long_alu_latency: 12,
            mispredict_penalty: 12,
            scheduler_window: 24,
            epoch_cycles: 64 * 1024,
        }
    }
}

impl SmtParams {
    /// A scaled-down configuration for fast unit tests: identical structure,
    /// short epochs.
    pub fn test_scale() -> Self {
        SmtParams {
            epoch_cycles: 2048,
            ..SmtParams::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table5() {
        let p = SmtParams::default();
        assert_eq!(p.iq_size, 97);
        assert_eq!(p.rob_size, 224);
        assert_eq!(p.lq_size, 72);
        assert_eq!(p.sq_size, 56);
        assert_eq!(p.irf_size, 180);
        assert_eq!(p.frf_size, 164);
        assert_eq!(p.decode_width, 5);
        assert_eq!(p.issue_width, 8);
        assert_eq!(p.commit_width, 8);
        assert_eq!(p.epoch_cycles, 65_536);
    }

    #[test]
    fn test_scale_only_shortens_epochs() {
        let t = SmtParams::test_scale();
        let d = SmtParams::default();
        assert_eq!(t.rob_size, d.rob_size);
        assert!(t.epoch_cycles < d.epoch_cycles);
    }
}
