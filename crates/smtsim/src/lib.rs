//! # `mab-smtsim` — cycle-level 2-way SMT pipeline simulator
//!
//! A gem5/SecSMT-class substrate for the paper's SMT instruction-fetch use
//! case: a 2-thread out-of-order pipeline in which **all** structures (ROB,
//! IQ, LQ, SQ, integer/FP register files) are dynamically shared between
//! threads, as in the SecSMT configuration the paper builds on (§6.1,
//! Table 5).
//!
//! The pieces:
//!
//! - [`config`] — Table 5 parameters,
//! - [`policies`] — fetch priority policies (ICount, BrC, LSQC, RR) and
//!   fetch-gating structure masks; together a fetch *Priority & Gating*
//!   (PG) policy `X_b3b2b1b0` (§3.3, Table 1),
//! - [`hill_climb`] — Choi & Yeung's Hill-Climbing adaptation of the
//!   per-thread occupancy threshold (§3.2),
//! - [`pipeline`] — the cycle-level pipeline with rename
//!   stalled/idle/running accounting (Fig. 15),
//! - [`controllers`] — PG-policy controllers: static policies, the Choi
//!   policy, and the Bandit controller (§5.3).
//!
//! # Example
//!
//! ```
//! use mab_smtsim::{config::SmtParams, controllers::ChoiController, pipeline::SmtPipeline};
//! use mab_workloads::smt;
//!
//! let a = smt::thread_by_name("gcc").unwrap();
//! let b = smt::thread_by_name("lbm").unwrap();
//! let mut pipe = SmtPipeline::new(SmtParams::default(), [a, b], 1);
//! let stats = pipe.run(Box::new(ChoiController::new()), 20_000);
//! assert!(stats.sum_ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod controllers;
pub mod hill_climb;
pub mod pipeline;
pub mod policies;

pub use config::SmtParams;
pub use controllers::{BanditController, ChoiController, PgController, StaticPgController};
pub use pipeline::{RenameStats, SmtPipeline, SmtStats};
pub use policies::{FetchPriority, GateMask, PgPolicy};
