//! The cycle-level 2-way SMT pipeline.
//!
//! Five stages are modeled each cycle — commit, issue/execute,
//! rename/dispatch, fetch — over **dynamically shared** structures (ROB,
//! IQ, LQ, SQ, IRF, FRF), as in the SecSMT configuration the paper builds
//! on. The rename stage's per-cycle classification (stalled by which full
//! structure / idle / running) feeds the paper's Fig. 15 analysis.
//!
//! Fetch is controlled by a [`PgController`]: every cycle the pipeline
//! applies the controller's fetch Priority & Gating policy, and at every
//! Hill-Climbing epoch boundary it reports the epoch's per-thread IPC back
//! to the controller.

use crate::config::SmtParams;
use crate::controllers::{EpochIpc, PgController};
use crate::policies::{FetchPriority, PgPolicy};
use mab_workloads::smt::{MemClass, SmtInstr, SmtOpKind, ThreadGen, ThreadSpec};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Ring size for dependency completion lookup. A slot may only be reused
/// once no in-flight instruction can reference it, so the ring must exceed
/// the ROB depth (224) plus the maximum dependency distance (24).
const DEP_RING: usize = 512;
/// Words in the seq-indexed unissued bitset covering the ring.
const RING_WORDS: usize = DEP_RING / 64;
/// Sentinel: instruction dispatched but not yet completed.
const PENDING: u64 = u64::MAX;

/// Why the rename stage could not make progress in a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RenameBlock {
    Rob,
    Iq,
    Lq,
    Sq,
    Rf,
}

/// Per-cycle classification of the rename stage (paper Fig. 15).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RenameStats {
    /// Cycles stalled with the ROB full.
    pub stalled_rob: u64,
    /// Cycles stalled with the IQ full.
    pub stalled_iq: u64,
    /// Cycles stalled with the LQ full.
    pub stalled_lq: u64,
    /// Cycles stalled with the SQ full.
    pub stalled_sq: u64,
    /// Cycles stalled with a register file full.
    pub stalled_rf: u64,
    /// Cycles with nothing to rename (front end empty, e.g. fetch gated).
    pub idle: u64,
    /// Cycles in which at least one instruction renamed.
    pub running: u64,
}

impl RenameStats {
    /// Total cycles classified.
    pub fn total(&self) -> u64 {
        self.stalled() + self.idle + self.running
    }

    /// Cycles stalled for any reason.
    pub fn stalled(&self) -> u64 {
        self.stalled_rob + self.stalled_iq + self.stalled_lq + self.stalled_sq + self.stalled_rf
    }
}

/// Result of one SMT simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SmtStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed per thread.
    pub commits: [u64; 2],
    /// Rename-stage cycle classification.
    pub rename: RenameStats,
}

impl SmtStats {
    /// IPC of one thread.
    pub fn ipc(&self, thread: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.commits[thread] as f64 / self.cycles as f64
        }
    }

    /// Summed IPC of both threads (the paper's SMT metric, §6.4).
    pub fn sum_ipc(&self) -> f64 {
        self.ipc(0) + self.ipc(1)
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    seq: u64,
    dep_seq: u64,
    latency: u32,
    complete_at: u64,
    issued: bool,
    in_iq: bool,
    is_load: bool,
    is_store: bool,
    is_branch: bool,
    mispredicted: bool,
    int_dest: bool,
    store_drain: u32,
}

/// Seed decorrelation salt for thread 1 of a 2-thread mix.
///
/// [`SmtPipeline::new`] streams thread 0 at `seed` and thread 1 at
/// `seed.wrapping_add(THREAD1_SEED_SALT)`. Trace recorders must apply the
/// same salt to reproduce the exact per-thread streams (see
/// `mab_traces::record_smt_to_file`).
pub const THREAD1_SEED_SALT: u64 = 0x5151;

/// Instruction source for one hardware thread.
///
/// The generator arm keeps the common case statically dispatched (the
/// per-fetch virtual call would show up in the pipeline's hot loop); the
/// boxed arm is how trace replay plugs in via
/// [`SmtPipeline::with_streams`].
pub enum SmtStream {
    /// The seeded workload-model generator.
    Generated(ThreadGen),
    /// Any other instruction stream, e.g. a trace-file reader.
    Boxed(Box<dyn Iterator<Item = SmtInstr>>),
}

impl SmtStream {
    #[inline]
    fn next_instr(&mut self) -> SmtInstr {
        match self {
            SmtStream::Generated(g) => g.next().expect("thread generators are infinite"),
            SmtStream::Boxed(it) => it
                .next()
                .expect("SMT instruction stream ended before the run finished"),
        }
    }
}

impl std::fmt::Debug for SmtStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmtStream::Generated(_) => f.write_str("SmtStream::Generated"),
            SmtStream::Boxed(_) => f.write_str("SmtStream::Boxed"),
        }
    }
}

struct ThreadState {
    gen: SmtStream,
    fetch_queue: VecDeque<SmtInstr>,
    fetch_blocked_until: u64,
    rob: VecDeque<Slot>,
    /// Index of the first ROB slot that may be unissued: every slot before
    /// it is known issued, so the issue stage starts scanning here instead
    /// of walking the issued prefix each cycle. Commits (front pops) shift
    /// it down; issues of the leading slots push it up.
    issue_hint: usize,
    complete_time: Box<[u64; DEP_RING]>,
    /// Eligibility mask for the chunked issue scan, indexed by
    /// `seq % DEP_RING`: a bit is set exactly while its slot is in the ROB
    /// and unissued (set at rename, cleared at issue; committed heads are
    /// always issued, so commit never touches it). The in-ROB seq range is
    /// at most `rob_size` (224) wide — well under [`DEP_RING`] — so ring
    /// order starting at the head's position is ROB order and every set
    /// bit belongs to a live slot.
    unissued: [u64; RING_WORDS],
    /// `dep_seq` by `seq % DEP_RING`, written at rename: the chunked scan
    /// gathers dependency readiness from two flat arrays (this one and
    /// `complete_time`) instead of walking 48-byte ROB slots.
    dep_seqs: Box<[u64; DEP_RING]>,
    seq_next: u64,
    committed: u64,
    // Occupancy counters for this thread's entries in the shared structures.
    iq: u32,
    lq: u32,
    sq: u32,
    irf: u32,
    frf: u32,
    branches_in_rob: u32,
    sq_drain: BinaryHeap<Reverse<u64>>,
}

impl ThreadState {
    fn new(stream: SmtStream) -> Self {
        ThreadState {
            gen: stream,
            fetch_queue: VecDeque::new(),
            fetch_blocked_until: 0,
            rob: VecDeque::new(),
            issue_hint: 0,
            complete_time: Box::new([0; DEP_RING]),
            unissued: [0; RING_WORDS],
            dep_seqs: Box::new([0; DEP_RING]),
            seq_next: DEP_RING as u64, // dependencies on "pre-history" are ready
            committed: 0,
            iq: 0,
            lq: 0,
            sq: 0,
            irf: 0,
            frf: 0,
            branches_in_rob: 0,
            sq_drain: BinaryHeap::new(),
        }
    }

    fn lsq(&self) -> u32 {
        self.lq + self.sq
    }
}

/// The 2-way SMT pipeline.
///
/// # Example
///
/// ```
/// use mab_smtsim::{config::SmtParams, controllers::StaticPgController, pipeline::SmtPipeline};
/// use mab_smtsim::policies::PgPolicy;
/// use mab_workloads::smt;
///
/// let a = smt::thread_by_name("gcc").unwrap();
/// let b = smt::thread_by_name("xz").unwrap();
/// let mut pipe = SmtPipeline::new(SmtParams::test_scale(), [a, b], 3);
/// let stats = pipe.run(Box::new(StaticPgController::new(PgPolicy::ICOUNT)), 5_000);
/// assert!(stats.commits.iter().all(|&c| c >= 5_000));
/// ```
pub struct SmtPipeline {
    params: SmtParams,
    threads: [ThreadState; 2],
    cycle: u64,
    rename: RenameStats,
    rr_last: usize,
    epoch_commits_latch: [u64; 2],
    /// Locally batched telemetry counts `[grants, gated]`, flushed to the
    /// recorder at epoch boundaries — per-cycle counter traffic would cost
    /// more than the fetch stage itself.
    probe_fetch: [u64; 2],
    /// Fetch-slot grants per thread within the current epoch, sampled into
    /// `fetch_share` occupancy tracks at each epoch boundary.
    epoch_grants: [u64; 2],
    /// Profiler enablement, latched at run start and epoch boundaries so
    /// the per-cycle stage loop never reads the global flag.
    profile_on: bool,
    /// Profiled cycles since the last flush — the per-stage call count
    /// (all four stages run every cycle, so one counter serves all).
    stage_cycles: u64,
    /// How many of those cycles were wall-clock timed (every
    /// [`STAGE_SAMPLE_PERIOD`]th).
    stage_timed: u64,
    /// Accumulated nanoseconds per stage, `[commit, issue, rename, fetch]`
    /// order, over the timed cycles only; flushed as `span::leaf` batches
    /// at epoch boundaries. Per-cycle span guards would cost more than the
    /// stages themselves.
    stage_ns: [u64; 4],
    /// Use the scalar reference issue scan; latched from
    /// [`mab_telemetry::hotpath`] at construction.
    scalar: bool,
}

/// Cycles between wall-clock-timed stage samples while profiling.
const STAGE_SAMPLE_PERIOD: u64 = 256;

/// Stage categories in [`SmtPipeline::stage_ns`] order.
const STAGE_CATEGORIES: [mab_telemetry::span::Category; 4] = [
    mab_telemetry::span::Category::Commit,
    mab_telemetry::span::Category::Issue,
    mab_telemetry::span::Category::Rename,
    mab_telemetry::span::Category::Fetch,
];

impl std::fmt::Debug for SmtPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmtPipeline")
            .field("cycle", &self.cycle)
            .field(
                "commits",
                &[self.threads[0].committed, self.threads[1].committed],
            )
            .finish()
    }
}

impl SmtPipeline {
    /// Creates a pipeline running the two thread models.
    pub fn new(params: SmtParams, specs: [ThreadSpec; 2], seed: u64) -> Self {
        Self::with_streams(
            params,
            [
                SmtStream::Generated(specs[0].stream(seed)),
                SmtStream::Generated(specs[1].stream(seed.wrapping_add(THREAD1_SEED_SALT))),
            ],
        )
    }

    /// Creates a pipeline over two explicit instruction streams — how trace
    /// replay substitutes recorded files for the generators. The streams
    /// must not end before both threads reach the run's commit target (the
    /// pipeline keeps fetching down wrong paths and past a finished
    /// thread's target, so supply a margin; see
    /// `mab_experiments::traces`).
    pub fn with_streams(params: SmtParams, streams: [SmtStream; 2]) -> Self {
        let [s0, s1] = streams;
        SmtPipeline {
            params,
            threads: [ThreadState::new(s0), ThreadState::new(s1)],
            cycle: 0,
            rename: RenameStats::default(),
            rr_last: 0,
            epoch_commits_latch: [0; 2],
            probe_fetch: [0; 2],
            epoch_grants: [0; 2],
            profile_on: false,
            stage_cycles: 0,
            stage_timed: 0,
            stage_ns: [0; 4],
            scalar: mab_telemetry::hotpath::scalar_kernels(),
        }
    }

    /// Flushes the locally batched fetch-slot counts to the recorder.
    fn flush_probes(&mut self) {
        if mab_telemetry::STATIC_ENABLED {
            let [grants, gated] = std::mem::take(&mut self.probe_fetch);
            mab_telemetry::count!(SmtFetchGrant, grants);
            mab_telemetry::count!(SmtFetchGated, gated);
        }
    }

    /// Flushes the batched per-stage profiling totals as leaf spans.
    fn flush_stage_profile(&mut self) {
        if mab_telemetry::STATIC_ENABLED {
            let cycles = std::mem::take(&mut self.stage_cycles);
            let timed = std::mem::take(&mut self.stage_timed);
            for (i, cat) in STAGE_CATEGORIES.iter().enumerate() {
                let total_ns = std::mem::take(&mut self.stage_ns[i]);
                mab_telemetry::span::leaf(*cat, 0, cycles, timed, total_ns);
            }
        }
    }

    /// Runs until **both** threads have committed `commits_per_thread`
    /// instructions, driving fetch with `controller`. Returns the run's
    /// statistics; the controller can be inspected afterwards.
    pub fn run(
        &mut self,
        mut controller: Box<dyn PgController>,
        commits_per_thread: u64,
    ) -> SmtStats {
        self.run_with(controller.as_mut(), commits_per_thread)
    }

    /// Like [`SmtPipeline::run`] but borrows the controller, so the caller
    /// can read its state (e.g. the Bandit's selection history) afterwards.
    pub fn run_with(
        &mut self,
        controller: &mut dyn PgController,
        commits_per_thread: u64,
    ) -> SmtStats {
        let epoch_len = self.params.epoch_cycles.max(1);
        // Controllers only change their policy and shares inside
        // `on_epoch` (the trait reads them through `&self`), so the per-
        // cycle virtual calls are hoisted out of the loop and refreshed
        // only at epoch boundaries. A countdown replaces the per-cycle
        // divisibility check.
        let mut policy = controller.policy();
        let mut shares = [controller.share(0), controller.share(1)];
        let mut cycles_left = epoch_len;
        let start_cycle = self.cycle;
        self.profile_on = mab_telemetry::profile::enabled();
        while self.threads[0].committed < commits_per_thread
            || self.threads[1].committed < commits_per_thread
        {
            self.step(policy, shares);
            cycles_left -= 1;
            if cycles_left == 0 {
                cycles_left = epoch_len;
                let mut per_thread = [0.0; 2];
                for (i, t) in self.threads.iter().enumerate() {
                    per_thread[i] =
                        (t.committed - self.epoch_commits_latch[i]) as f64 / epoch_len as f64;
                    self.epoch_commits_latch[i] = t.committed;
                }
                mab_telemetry::count!(SmtEpochs);
                mab_telemetry::record!(EpochIpc, per_thread[0] + per_thread[1]);
                // Black-box epoch summary (feature-independent): aggregate
                // IPC at each epoch boundary.
                mab_telemetry::blackbox::epoch(
                    "smt",
                    (self.cycle - start_cycle) / epoch_len,
                    self.cycle,
                    per_thread[0] + per_thread[1],
                );
                self.flush_probes();
                self.flush_stage_profile();
                self.profile_on = mab_telemetry::profile::enabled();
                // Publish the epoch-boundary cycle before the controller
                // runs, so any bandit decision it records lands at the right
                // timeline position; sample the per-thread fetch shares and
                // IPCs as occupancy tracks.
                mab_telemetry::clock!(self.cycle);
                if mab_telemetry::STATIC_ENABLED {
                    if mab_telemetry::enabled() {
                        let total = (self.epoch_grants[0] + self.epoch_grants[1]).max(1) as f64;
                        for (i, &grants) in self.epoch_grants.iter().enumerate() {
                            mab_telemetry::emit!(Occupancy {
                                track: "fetch_share",
                                id: i,
                                value: grants as f64 / total,
                                cycle: self.cycle,
                            });
                            mab_telemetry::emit!(Occupancy {
                                track: "thread_ipc",
                                id: i,
                                value: per_thread[i],
                                cycle: self.cycle,
                            });
                        }
                    }
                    self.epoch_grants = [0; 2];
                }
                {
                    mab_telemetry::span!(PolicyEval);
                    controller.on_epoch(EpochIpc { per_thread });
                }
                policy = controller.policy();
                shares = [controller.share(0), controller.share(1)];
            }
        }
        self.flush_probes();
        self.flush_stage_profile();
        mab_telemetry::count!(SimCycles, self.cycle - start_cycle);
        self.stats()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SmtStats {
        SmtStats {
            cycles: self.cycle,
            commits: [self.threads[0].committed, self.threads[1].committed],
            rename: self.rename,
        }
    }

    /// Advances one cycle under the given policy and gating shares.
    fn step(&mut self, policy: PgPolicy, shares: [f64; 2]) {
        self.cycle += 1;
        let cycle = self.cycle;

        // Stage 0: drain store-queue entries whose post-commit write finished.
        for t in &mut self.threads {
            while t.sq_drain.peek().is_some_and(|&Reverse(at)| at <= cycle) {
                t.sq_drain.pop();
                t.sq -= 1;
            }
        }

        if mab_telemetry::STATIC_ENABLED && self.profile_on {
            self.step_stages_profiled(cycle, policy, shares);
        } else {
            self.commit_stage(cycle);
            self.issue_stage(cycle);
            self.rename_stage(cycle, policy);
            self.fetch_stage(cycle, policy, shares);
        }
    }

    /// The four stages with batched profiling: exact counts every cycle,
    /// wall-clock timing only on every [`STAGE_SAMPLE_PERIOD`]th cycle —
    /// per-cycle span guards (two `Instant::now` calls each) would dwarf
    /// the stages themselves at ~360 ns/cycle.
    fn step_stages_profiled(&mut self, cycle: u64, policy: PgPolicy, shares: [f64; 2]) {
        self.stage_cycles += 1;
        if !cycle.is_multiple_of(STAGE_SAMPLE_PERIOD) {
            self.commit_stage(cycle);
            self.issue_stage(cycle);
            self.rename_stage(cycle, policy);
            self.fetch_stage(cycle, policy, shares);
            return;
        }
        let t0 = std::time::Instant::now();
        self.commit_stage(cycle);
        let t1 = std::time::Instant::now();
        self.issue_stage(cycle);
        let t2 = std::time::Instant::now();
        self.rename_stage(cycle, policy);
        let t3 = std::time::Instant::now();
        self.fetch_stage(cycle, policy, shares);
        let t4 = std::time::Instant::now();
        self.stage_timed += 1;
        for (ns, span) in self
            .stage_ns
            .iter_mut()
            .zip([t1 - t0, t2 - t1, t3 - t2, t4 - t3])
        {
            *ns += span.as_nanos() as u64;
        }
    }

    fn commit_stage(&mut self, cycle: u64) {
        let mut budget = self.params.commit_width;
        let drain = self.params.store_drain_latency;
        // Alternate which thread gets first claim on commit bandwidth.
        let first = (cycle % 2) as usize;
        for off in 0..2 {
            let t = &mut self.threads[(first + off) % 2];
            while budget > 0 {
                let Some(head) = t.rob.front() else { break };
                if !head.issued || head.complete_at > cycle {
                    break;
                }
                let slot = t.rob.pop_front().expect("checked non-empty");
                // The committed head was issued, so the issue hint's
                // issued-prefix invariant survives the index shift.
                t.issue_hint = t.issue_hint.saturating_sub(1);
                budget -= 1;
                t.committed += 1;
                if slot.is_load {
                    t.lq -= 1;
                }
                if slot.is_store {
                    if slot.store_drain > 0 {
                        t.sq_drain.push(Reverse(cycle + drain as u64));
                    } else {
                        t.sq -= 1;
                    }
                }
                if slot.is_branch {
                    t.branches_in_rob -= 1;
                }
                if slot.int_dest {
                    t.irf -= 1;
                } else {
                    t.frf -= 1;
                }
            }
        }
    }

    fn issue_stage(&mut self, cycle: u64) {
        let mut budget = self.params.issue_width;
        let window = self.params.scheduler_window;
        let penalty = self.params.mispredict_penalty as u64;
        let scalar = self.scalar;
        let first = (cycle % 2) as usize;
        for off in 0..2 {
            if budget == 0 {
                break;
            }
            let t = &mut self.threads[(first + off) % 2];
            budget = if scalar {
                Self::issue_thread_scalar(t, cycle, budget, window, penalty)
            } else {
                Self::issue_thread_chunked(t, cycle, budget, window, penalty)
            };
        }
    }

    /// Scalar reference issue scan for one thread: walk the ROB from the
    /// issue hint, skipping issued slots. Kept as the differential baseline
    /// for [`SmtPipeline::issue_thread_chunked`].
    fn issue_thread_scalar(
        t: &mut ThreadState,
        cycle: u64,
        mut budget: u32,
        window: usize,
        penalty: u64,
    ) -> u32 {
        // Advance past the issued prefix once, then scan from there:
        // the scheduler window counts only unissued slots, so skipping
        // already-issued leading slots visits the same candidates the
        // full walk would.
        while t.rob.get(t.issue_hint).is_some_and(|slot| slot.issued) {
            t.issue_hint += 1;
        }
        let mut scanned = 0usize;
        for slot in t.rob.range_mut(t.issue_hint..) {
            if budget == 0 || scanned >= window {
                break;
            }
            if slot.issued {
                continue;
            }
            scanned += 1;
            let dep_ready = t.complete_time[(slot.dep_seq % DEP_RING as u64) as usize] <= cycle;
            if !dep_ready {
                continue;
            }
            slot.issued = true;
            slot.complete_at = cycle + slot.latency as u64;
            t.complete_time[(slot.seq % DEP_RING as u64) as usize] = slot.complete_at;
            t.unissued[(slot.seq as usize % DEP_RING) / 64] &= !(1u64 << (slot.seq % 64));
            t.iq -= 1;
            slot.in_iq = false;
            budget -= 1;
            if slot.mispredicted {
                // Redirect at execute: the front end refills afterwards.
                t.fetch_blocked_until = t.fetch_blocked_until.max(slot.complete_at + penalty);
            }
        }
        budget
    }

    /// Chunked issue scan: candidates come straight off the seq-indexed
    /// `unissued` bitset — one `trailing_zeros` per candidate over at most
    /// [`RING_WORDS`] words — instead of walking 48-byte ROB slots, and
    /// dependency readiness gathers from the flat `dep_seqs` /
    /// `complete_time` rings. Visits exactly the scalar scan's candidates
    /// in ROB order: set bits exist only for in-ROB unissued slots, ring
    /// order from the head's position is seq order (the live range is
    /// narrower than the ring), and issuing cannot flip a later
    /// candidate's readiness within the cycle because every latency is
    /// ≥ 1 (`PENDING` before issue, `cycle + latency > cycle` after).
    fn issue_thread_chunked(
        t: &mut ThreadState,
        cycle: u64,
        mut budget: u32,
        window: usize,
        penalty: u64,
    ) -> u32 {
        let Some(front) = t.rob.front() else {
            return budget;
        };
        let front_seq = front.seq;
        let head_pos = front_seq as usize % DEP_RING;
        let mut word_idx = head_pos / 64;
        // Bits below the head's lane are ring positions the live seq range
        // has not wrapped around to (it is at most `rob_size` < DEP_RING/2
        // wide), so they are clear; masking them keeps the very first word
        // aligned with ROB order even if that ever changed.
        let mut word = t.unissued[word_idx] & !((1u64 << (head_pos % 64)) - 1);
        let mut scanned = 0usize;
        let mut hint_updated = false;
        'scan: for words_left in (0..RING_WORDS).rev() {
            while word != 0 {
                if budget == 0 || scanned >= window {
                    break 'scan;
                }
                let lane = word.trailing_zeros() as usize;
                word &= word - 1;
                let ring_pos = word_idx * 64 + lane;
                // Ring position → ROB index (offset past the head).
                let offset = (ring_pos + DEP_RING - head_pos) % DEP_RING;
                if !hint_updated {
                    // First unissued slot: exactly where the scalar
                    // prefix-advance parks the hint.
                    t.issue_hint = offset;
                    hint_updated = true;
                }
                scanned += 1;
                let dep_seq = t.dep_seqs[ring_pos];
                if t.complete_time[(dep_seq % DEP_RING as u64) as usize] > cycle {
                    continue;
                }
                let slot = &mut t.rob[offset];
                debug_assert_eq!(slot.seq as usize % DEP_RING, ring_pos);
                slot.issued = true;
                slot.complete_at = cycle + slot.latency as u64;
                let complete_at = slot.complete_at;
                let mispredicted = slot.mispredicted;
                slot.in_iq = false;
                t.complete_time[ring_pos] = complete_at;
                t.unissued[word_idx] &= !(1u64 << lane);
                t.iq -= 1;
                budget -= 1;
                if mispredicted {
                    // Redirect at execute: the front end refills afterwards.
                    t.fetch_blocked_until = t.fetch_blocked_until.max(complete_at + penalty);
                }
            }
            if words_left == 0 {
                break;
            }
            word_idx = (word_idx + 1) % RING_WORDS;
            word = t.unissued[word_idx];
        }
        if !hint_updated {
            // No unissued slot anywhere: the scalar prefix-advance would
            // have walked off the end of the ROB.
            t.issue_hint = t.rob.len();
        }
        budget
    }

    /// The thread the priority policy favors right now (lower metric wins;
    /// ties go to thread 0, round-robin alternates by cycle).
    fn favored_thread(&self, priority: FetchPriority, cycle: u64) -> usize {
        match priority {
            FetchPriority::ICount => (self.threads[1].iq < self.threads[0].iq) as usize,
            FetchPriority::BranchCount => {
                (self.threads[1].branches_in_rob < self.threads[0].branches_in_rob) as usize
            }
            FetchPriority::LsqCount => (self.threads[1].lsq() < self.threads[0].lsq()) as usize,
            FetchPriority::RoundRobin => (cycle % 2) as usize,
        }
    }

    fn rename_stage(&mut self, cycle: u64, policy: PgPolicy) {
        let p = self.params;
        let mut budget = p.decode_width;
        let mut renamed = 0u32;
        let mut block: Option<RenameBlock> = None;
        // Dispatch bandwidth follows the fetch priority policy: the favored
        // thread fills shared structures first, so a slow thread cannot clog
        // the IQ just by having a backlog in its front-end queue.
        let first = self.favored_thread(policy.priority, cycle);
        // Shared-structure occupancy across both threads, maintained
        // incrementally as instructions rename instead of re-summed per
        // instruction.
        let mut rob_total = self.threads[0].rob.len() + self.threads[1].rob.len();
        let mut iq_total = self.threads[0].iq + self.threads[1].iq;
        let mut lq_total = self.threads[0].lq + self.threads[1].lq;
        let mut sq_total = self.threads[0].sq + self.threads[1].sq;
        let mut irf_total = self.threads[0].irf + self.threads[1].irf;
        let mut frf_total = self.threads[0].frf + self.threads[1].frf;
        for off in 0..2 {
            let ti = (first + off) % 2;
            loop {
                if budget == 0 {
                    break;
                }
                let t = &mut self.threads[ti];
                let Some(&instr) = t.fetch_queue.front() else {
                    break;
                };

                let needed_block = if rob_total >= p.rob_size as usize {
                    Some(RenameBlock::Rob)
                } else if iq_total >= p.iq_size {
                    Some(RenameBlock::Iq)
                } else if matches!(instr.kind, SmtOpKind::Load(_)) && lq_total >= p.lq_size {
                    Some(RenameBlock::Lq)
                } else if matches!(instr.kind, SmtOpKind::Store(_)) && sq_total >= p.sq_size {
                    Some(RenameBlock::Sq)
                } else if (instr.int_dest && irf_total >= p.irf_size)
                    || (!instr.int_dest && frf_total >= p.frf_size)
                {
                    Some(RenameBlock::Rf)
                } else {
                    None
                };
                if let Some(cause) = needed_block {
                    block = block.or(Some(cause));
                    break;
                }

                t.fetch_queue.pop_front();
                budget -= 1;
                renamed += 1;
                let seq = t.seq_next;
                t.seq_next += 1;
                let ring_pos = (seq % DEP_RING as u64) as usize;
                t.complete_time[ring_pos] = PENDING;
                let dep_seq = seq.saturating_sub(instr.dep_distance as u64);
                // Keep the chunked-issue gather arrays in lockstep: the
                // slot enters the ROB unissued.
                t.unissued[ring_pos / 64] |= 1u64 << (ring_pos % 64);
                t.dep_seqs[ring_pos] = dep_seq;
                let (latency, is_load, is_store, is_branch, mispredicted, drain) = match instr.kind
                {
                    SmtOpKind::Alu => (1, false, false, false, false, 0),
                    SmtOpKind::LongAlu => (p.long_alu_latency, false, false, false, false, 0),
                    SmtOpKind::Load(class) => (
                        p.load_latency[match class {
                            MemClass::L1 => 0,
                            MemClass::L2 => 1,
                            MemClass::Mem => 2,
                        }],
                        true,
                        false,
                        false,
                        false,
                        0,
                    ),
                    SmtOpKind::Store(class) => (
                        1,
                        false,
                        true,
                        false,
                        false,
                        if class == MemClass::Mem {
                            p.store_drain_latency
                        } else {
                            0
                        },
                    ),
                    SmtOpKind::Branch { mispredicted } => (1, false, false, true, mispredicted, 0),
                };
                t.iq += 1;
                iq_total += 1;
                rob_total += 1;
                if is_load {
                    t.lq += 1;
                    lq_total += 1;
                }
                if is_store {
                    t.sq += 1;
                    sq_total += 1;
                }
                if is_branch {
                    t.branches_in_rob += 1;
                }
                if instr.int_dest {
                    t.irf += 1;
                    irf_total += 1;
                } else {
                    t.frf += 1;
                    frf_total += 1;
                }
                t.rob.push_back(Slot {
                    seq,
                    dep_seq,
                    latency,
                    complete_at: 0,
                    issued: false,
                    in_iq: true,
                    is_load,
                    is_store,
                    is_branch,
                    mispredicted,
                    int_dest: instr.int_dest,
                    store_drain: drain,
                });
            }
        }

        // Fig. 15 classification of this rename cycle.
        if renamed > 0 {
            self.rename.running += 1;
        } else if let Some(cause) = block {
            match cause {
                RenameBlock::Rob => self.rename.stalled_rob += 1,
                RenameBlock::Iq => self.rename.stalled_iq += 1,
                RenameBlock::Lq => self.rename.stalled_lq += 1,
                RenameBlock::Sq => self.rename.stalled_sq += 1,
                RenameBlock::Rf => self.rename.stalled_rf += 1,
            }
        } else {
            self.rename.idle += 1;
        }
    }

    /// True when `thread` exceeds its occupancy share in any structure
    /// monitored by the gating mask. The four occupancy checks are folded
    /// into one branchless over-limit mask — each comparison is computed
    /// with the exact float expression the short-circuit chain used
    /// (comparisons have no side effects, so evaluating all four is
    /// result-identical), and the masked OR replaces four branches the
    /// predictor has to guess per cycle.
    fn gated(&self, thread: usize, policy: PgPolicy, share: f64) -> bool {
        let p = &self.params;
        let t = &self.threads[thread];
        let g = policy.gating;
        let over = (u8::from(t.iq as f64 > share * p.iq_size as f64) & u8::from(g.iq))
            | (u8::from(t.lsq() as f64 > share * (p.lq_size + p.sq_size) as f64) & u8::from(g.lsq))
            | (u8::from(t.rob.len() as f64 > share * p.rob_size as f64) & u8::from(g.rob))
            | (u8::from(t.irf as f64 > share * p.irf_size as f64) & u8::from(g.irf));
        over != 0
    }

    fn fetch_stage(&mut self, cycle: u64, policy: PgPolicy, shares: [f64; 2]) {
        let p = self.params;
        // At most two threads: eligibility is a 2-bit mask, built in thread
        // order so the gating telemetry fires exactly as the list-based
        // scan did.
        let mut eligible_mask = 0u32;
        for (i, &share) in shares.iter().enumerate() {
            let t = &self.threads[i];
            if t.fetch_blocked_until > cycle
                || t.fetch_queue.len() + p.fetch_width as usize > p.fetch_buffer as usize
            {
                continue;
            }
            if self.gated(i, policy, share) {
                if mab_telemetry::STATIC_ENABLED {
                    self.probe_fetch[1] += 1;
                }
                mab_telemetry::emit_sim!(FetchGated {
                    thread: i,
                    cycle: cycle,
                });
                continue;
            }
            eligible_mask |= 1 << i;
        }
        let chosen = match eligible_mask {
            0b00 => return,
            0b01 => 0,
            0b10 => 1,
            _ => match policy.priority {
                FetchPriority::ICount => {
                    if self.threads[0].iq <= self.threads[1].iq {
                        0
                    } else {
                        1
                    }
                }
                FetchPriority::BranchCount => {
                    if self.threads[0].branches_in_rob <= self.threads[1].branches_in_rob {
                        0
                    } else {
                        1
                    }
                }
                FetchPriority::LsqCount => {
                    if self.threads[0].lsq() <= self.threads[1].lsq() {
                        0
                    } else {
                        1
                    }
                }
                FetchPriority::RoundRobin => 1 - self.rr_last,
            },
        };
        self.rr_last = chosen;
        if mab_telemetry::STATIC_ENABLED {
            self.probe_fetch[0] += 1;
            self.epoch_grants[chosen] += 1;
        }
        mab_telemetry::emit_sim!(FetchSlotGrant {
            thread: chosen,
            cycle: cycle,
        });
        let t = &mut self.threads[chosen];
        for _ in 0..p.fetch_width {
            let instr = t.gen.next_instr();
            t.fetch_queue.push_back(instr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controllers::{ChoiController, StaticPgController};
    use mab_workloads::smt;

    fn pipe(a: &str, b: &str) -> SmtPipeline {
        SmtPipeline::new(
            SmtParams::test_scale(),
            [
                smt::thread_by_name(a).unwrap(),
                smt::thread_by_name(b).unwrap(),
            ],
            7,
        )
    }

    #[test]
    fn both_threads_reach_the_commit_target() {
        let mut p = pipe("gcc", "xz");
        let stats = p.run(Box::new(StaticPgController::new(PgPolicy::ICOUNT)), 10_000);
        assert!(stats.commits[0] >= 10_000);
        assert!(stats.commits[1] >= 10_000);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn ipc_is_plausible() {
        let mut p = pipe("exchange2", "deepsjeng");
        let stats = p.run(Box::new(StaticPgController::new(PgPolicy::ICOUNT)), 20_000);
        let ipc = stats.sum_ipc();
        assert!(ipc > 0.5 && ipc < 8.0, "sum ipc {ipc}");
    }

    #[test]
    fn memory_bound_thread_is_slower_than_compute_thread() {
        let mut p = pipe("exchange2", "mcf");
        let stats = p.run(Box::new(StaticPgController::new(PgPolicy::ICOUNT)), 10_000);
        assert!(
            stats.ipc(0) > stats.ipc(1),
            "exchange2 {} vs mcf {}",
            stats.ipc(0),
            stats.ipc(1)
        );
    }

    #[test]
    fn rename_classification_covers_every_cycle() {
        let mut p = pipe("gcc", "lbm");
        let stats = p.run(Box::new(ChoiController::new()), 10_000);
        assert_eq!(stats.rename.total(), stats.cycles);
    }

    #[test]
    fn lbm_pressures_the_store_queue() {
        let mut p = pipe("lbm", "mcf");
        let stats = p.run(Box::new(StaticPgController::new(PgPolicy::ICOUNT)), 15_000);
        assert!(
            stats.rename.stalled_sq > 0,
            "expected SQ stalls: {:?}",
            stats.rename
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let mut p = pipe("gcc", "cactus");
            p.run(Box::new(ChoiController::new()), 5_000)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn gating_mask_changes_behaviour() {
        // With an LSQ-aware policy, an SQ-hog pair should see fewer SQ stalls
        // than with no gating at all.
        let run = |policy: &str| {
            let mut p = pipe("lbm", "gcc");
            let stats = p.run(
                Box::new(StaticPgController::new(policy.parse().unwrap())),
                15_000,
            );
            stats.rename.stalled_sq as f64 / stats.cycles as f64
        };
        let ungated = run("IC_0000");
        let gated = run("IC_0100");
        assert!(
            gated <= ungated + 1e-9,
            "LSQ gating should not increase SQ stalls: {ungated} -> {gated}"
        );
    }

    #[test]
    fn different_mixes_give_different_results() {
        let mut p1 = pipe("gcc", "lbm");
        let s1 = p1.run(Box::new(ChoiController::new()), 5_000);
        let mut p2 = pipe("mcf", "cactus");
        let s2 = p2.run(Box::new(ChoiController::new()), 5_000);
        assert_ne!(s1.cycles, s2.cycles);
    }

    mod differential {
        //! Chunked vs scalar eligible-mask scan differential: the chunked
        //! issue scan must produce bit-identical pipeline behaviour — the
        //! full stats struct, not just IPC — for arbitrary thread mixes,
        //! seeds and controllers.

        use super::*;
        use proptest::prelude::*;
        use std::sync::Mutex;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            #[test]
            fn chunked_issue_scan_matches_scalar_reference(
                a in 0usize..8,
                b in 0usize..8,
                seed in 0u64..1 << 32,
                choi in prop::bool::ANY,
            ) {
                let apps = smt::smt_apps();
                let specs = [apps[a % apps.len()].clone(), apps[b % apps.len()].clone()];
                // The kernel mode is process-wide and latched at pipeline
                // construction; both constructions happen under one lock.
                let (mut scalar, mut chunked) = {
                    static MODE_LOCK: Mutex<()> = Mutex::new(());
                    let _guard = MODE_LOCK.lock().unwrap();
                    mab_telemetry::hotpath::force_scalar(true);
                    let scalar =
                        SmtPipeline::new(SmtParams::test_scale(), specs.clone(), seed);
                    mab_telemetry::hotpath::force_scalar(false);
                    let chunked = SmtPipeline::new(SmtParams::test_scale(), specs, seed);
                    (scalar, chunked)
                };
                let controller = || -> Box<dyn PgController> {
                    if choi {
                        Box::new(ChoiController::new())
                    } else {
                        Box::new(StaticPgController::new(PgPolicy::ICOUNT))
                    }
                };
                let s = scalar.run(controller(), 3_000);
                let c = chunked.run(controller(), 3_000);
                prop_assert_eq!(s, c);
            }
        }
    }
}
