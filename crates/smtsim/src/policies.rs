//! Fetch Priority & Gating (PG) policies (paper §3.2–3.3).
//!
//! A PG policy `X_b3b2b1b0` combines a fetch *priority* policy `X`
//! (which non-gated thread to fetch from) with a fetch *gating* mask
//! `b3b2b1b0` (which structures' occupancies can gate a thread):
//! bit 3 = IQ, bit 2 = LSQ, bit 1 = ROB, bit 0 = IRF, exactly as in
//! Table 1. `IC_1011` is the Choi policy; `IC_0000` is plain ICount.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Fetch priority policies of Tullsen et al. (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FetchPriority {
    /// Fewest branches in the ROB.
    BranchCount,
    /// Fewest instruction-queue entries (ICount).
    ICount,
    /// Fewest load/store-queue entries.
    LsqCount,
    /// Round robin.
    RoundRobin,
}

impl FetchPriority {
    /// All four priority policies.
    pub const ALL: [FetchPriority; 4] = [
        FetchPriority::BranchCount,
        FetchPriority::ICount,
        FetchPriority::LsqCount,
        FetchPriority::RoundRobin,
    ];

    /// Short mnemonic (`BrC`, `IC`, `LSQC`, `RR`).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            FetchPriority::BranchCount => "BrC",
            FetchPriority::ICount => "IC",
            FetchPriority::LsqCount => "LSQC",
            FetchPriority::RoundRobin => "RR",
        }
    }
}

/// Which structures the fetch-gating policy monitors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct GateMask {
    /// Gate on instruction-queue occupancy.
    pub iq: bool,
    /// Gate on load/store-queue occupancy.
    pub lsq: bool,
    /// Gate on reorder-buffer occupancy.
    pub rob: bool,
    /// Gate on integer-register-file occupancy.
    pub irf: bool,
}

impl GateMask {
    /// No gating at all (`0000`).
    pub const NONE: GateMask = GateMask {
        iq: false,
        lsq: false,
        rob: false,
        irf: false,
    };

    /// The Choi mask (`1011`): IQ, ROB, IRF.
    pub const CHOI: GateMask = GateMask {
        iq: true,
        lsq: false,
        rob: true,
        irf: true,
    };

    /// Everything (`1111`).
    pub const ALL: GateMask = GateMask {
        iq: true,
        lsq: true,
        rob: true,
        irf: true,
    };

    /// Builds a mask from the `b3b2b1b0` bits (IQ, LSQ, ROB, IRF).
    pub fn from_bits(bits: u8) -> Self {
        GateMask {
            iq: bits & 0b1000 != 0,
            lsq: bits & 0b0100 != 0,
            rob: bits & 0b0010 != 0,
            irf: bits & 0b0001 != 0,
        }
    }

    /// The `b3b2b1b0` bit pattern.
    pub fn bits(&self) -> u8 {
        (self.iq as u8) << 3 | (self.lsq as u8) << 2 | (self.rob as u8) << 1 | self.irf as u8
    }

    /// True when no structure is monitored (fetch gating disabled).
    pub fn is_none(&self) -> bool {
        self.bits() == 0
    }
}

/// A fetch Priority & Gating policy.
///
/// # Example
///
/// ```
/// use mab_smtsim::policies::PgPolicy;
///
/// let choi = PgPolicy::CHOI;
/// assert_eq!(choi.to_string(), "IC_1011");
/// assert_eq!("LSQC_1111".parse::<PgPolicy>().unwrap().to_string(), "LSQC_1111");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PgPolicy {
    /// The fetch priority policy.
    pub priority: FetchPriority,
    /// The fetch gating mask.
    pub gating: GateMask,
}

impl PgPolicy {
    /// Plain ICount (`IC_0000`, Tullsen et al.).
    pub const ICOUNT: PgPolicy = PgPolicy {
        priority: FetchPriority::ICount,
        gating: GateMask::NONE,
    };

    /// The Choi policy (`IC_1011`).
    pub const CHOI: PgPolicy = PgPolicy {
        priority: FetchPriority::ICount,
        gating: GateMask::CHOI,
    };

    /// The 6 Bandit arms of Table 1.
    pub fn bandit_arms() -> [PgPolicy; 6] {
        [
            "IC_0000".parse().expect("static policy strings are valid"),
            "BrC_1000".parse().expect("static policy strings are valid"),
            "IC_1110".parse().expect("static policy strings are valid"),
            "IC_1111".parse().expect("static policy strings are valid"),
            "LSQC_1111"
                .parse()
                .expect("static policy strings are valid"),
            "RR_1111".parse().expect("static policy strings are valid"),
        ]
    }

    /// The full 64-policy design space (4 priorities × 16 masks, §3.3).
    pub fn all() -> Vec<PgPolicy> {
        let mut v = Vec::with_capacity(64);
        for priority in FetchPriority::ALL {
            for bits in 0..16u8 {
                v.push(PgPolicy {
                    priority,
                    gating: GateMask::from_bits(bits),
                });
            }
        }
        v
    }
}

impl fmt::Display for PgPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}_{:04b}", self.priority.mnemonic(), self.gating.bits())
    }
}

/// Error parsing a PG-policy mnemonic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError(String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid PG policy {:?}", self.0)
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for PgPolicy {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (prio, bits) = s
            .split_once('_')
            .ok_or_else(|| ParsePolicyError(s.into()))?;
        let priority = match prio {
            "BrC" => FetchPriority::BranchCount,
            "IC" => FetchPriority::ICount,
            "LSQC" => FetchPriority::LsqCount,
            "RR" => FetchPriority::RoundRobin,
            _ => return Err(ParsePolicyError(s.into())),
        };
        if bits.len() != 4 || !bits.bytes().all(|b| b == b'0' || b == b'1') {
            return Err(ParsePolicyError(s.into()));
        }
        let value = u8::from_str_radix(bits, 2).map_err(|_| ParsePolicyError(s.into()))?;
        Ok(PgPolicy {
            priority,
            gating: GateMask::from_bits(value),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn choi_is_ic_1011() {
        assert_eq!(PgPolicy::CHOI.to_string(), "IC_1011");
        assert!(PgPolicy::CHOI.gating.iq);
        assert!(!PgPolicy::CHOI.gating.lsq);
        assert!(PgPolicy::CHOI.gating.rob);
        assert!(PgPolicy::CHOI.gating.irf);
    }

    #[test]
    fn icount_has_no_gating() {
        assert_eq!(PgPolicy::ICOUNT.to_string(), "IC_0000");
        assert!(PgPolicy::ICOUNT.gating.is_none());
    }

    #[test]
    fn design_space_has_64_policies() {
        let all = PgPolicy::all();
        assert_eq!(all.len(), 64);
        let unique: std::collections::HashSet<String> = all.iter().map(|p| p.to_string()).collect();
        assert_eq!(unique.len(), 64);
    }

    #[test]
    fn bandit_arms_match_table1() {
        let arms = PgPolicy::bandit_arms();
        let names: Vec<String> = arms.iter().map(|p| p.to_string()).collect();
        assert_eq!(
            names,
            [
                "IC_0000",
                "BrC_1000",
                "IC_1110",
                "IC_1111",
                "LSQC_1111",
                "RR_1111"
            ]
        );
    }

    #[test]
    fn parse_round_trips() {
        for p in PgPolicy::all() {
            let s = p.to_string();
            assert_eq!(s.parse::<PgPolicy>().unwrap(), p);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("IC".parse::<PgPolicy>().is_err());
        assert!("XX_1010".parse::<PgPolicy>().is_err());
        assert!("IC_10".parse::<PgPolicy>().is_err());
        assert!("IC_10a1".parse::<PgPolicy>().is_err());
    }

    #[test]
    fn mask_bits_round_trip() {
        for bits in 0..16u8 {
            assert_eq!(GateMask::from_bits(bits).bits(), bits);
        }
    }
}
