//! Choi & Yeung's Hill-Climbing threshold adaptation (ISCA 2006, §3.2).
//!
//! The fetch-gating threshold is a per-thread share of the shared
//! structures. Hill Climbing runs trial epochs: it perturbs thread 0's
//! share by ±δ, measures the epoch's summed IPC, and moves toward the
//! best-performing setting. The paper observes these thresholds are mostly
//! *temporally stable* — the same property that motivates MABs.

use serde::{Deserialize, Serialize};

/// δ expressed as a share of the IQ (the paper defines δ = 2 IQ entries).
pub const DELTA_SHARE: f64 = 2.0 / 97.0;
/// Minimum share either thread may hold.
pub const MIN_SHARE: f64 = 0.10;

/// Which trial the climber is running this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Trial {
    Base,
    Up,
    Down,
}

/// The Hill-Climbing state for a 2-thread gating threshold.
///
/// Call [`HillClimb::share`] to read thread 0's current share (thread 1
/// gets the complement) and [`HillClimb::on_epoch`] at the end of every
/// epoch with that epoch's summed IPC.
///
/// # Example
///
/// ```
/// use mab_smtsim::hill_climb::HillClimb;
///
/// let mut hc = HillClimb::new();
/// let base = hc.share(0);
/// // Feed epochs where "more share for thread 0" pays off.
/// for _ in 0..12 {
///     let ipc = 1.0 + hc.share(0);
///     hc.on_epoch(ipc);
/// }
/// assert!(hc.share(0) > base);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HillClimb {
    base_share: f64,
    trial: Trial,
    base_ipc: f64,
    up_ipc: f64,
    delta: f64,
}

impl Default for HillClimb {
    fn default() -> Self {
        HillClimb::new()
    }
}

impl HillClimb {
    /// Starts at an even split with the paper's δ.
    pub fn new() -> Self {
        HillClimb::with_delta(DELTA_SHARE)
    }

    /// Starts with a custom δ (in share units).
    pub fn with_delta(delta: f64) -> Self {
        HillClimb {
            base_share: 0.5,
            trial: Trial::Base,
            base_ipc: 0.0,
            up_ipc: 0.0,
            delta,
        }
    }

    fn clamp(share: f64) -> f64 {
        share.clamp(MIN_SHARE, 1.0 - MIN_SHARE)
    }

    /// The share of every gated structure thread `thread` may occupy under
    /// the *current trial*.
    pub fn share(&self, thread: usize) -> f64 {
        let s0 = match self.trial {
            Trial::Base => self.base_share,
            Trial::Up => HillClimb::clamp(self.base_share + self.delta),
            Trial::Down => HillClimb::clamp(self.base_share - self.delta),
        };
        if thread == 0 {
            s0
        } else {
            1.0 - s0
        }
    }

    /// The converged (base) share of thread 0, ignoring the trial phase.
    pub fn base_share(&self) -> f64 {
        self.base_share
    }

    /// Restores a previously saved base share (Bandit saves/restores the
    /// threshold per arm when switching policies, §5.3).
    pub fn restore(&mut self, base_share: f64) {
        self.base_share = HillClimb::clamp(base_share);
        self.trial = Trial::Base;
    }

    /// Consumes the finished epoch's summed IPC and advances the trial
    /// sequence (base → up → down → move-to-best → base …).
    pub fn on_epoch(&mut self, epoch_ipc: f64) {
        match self.trial {
            Trial::Base => {
                self.base_ipc = epoch_ipc;
                self.trial = Trial::Up;
            }
            Trial::Up => {
                self.up_ipc = epoch_ipc;
                self.trial = Trial::Down;
            }
            Trial::Down => {
                let down_ipc = epoch_ipc;
                if self.up_ipc >= self.base_ipc && self.up_ipc >= down_ipc {
                    self.base_share = HillClimb::clamp(self.base_share + self.delta);
                } else if down_ipc >= self.base_ipc && down_ipc >= self.up_ipc {
                    self.base_share = HillClimb::clamp(self.base_share - self.delta);
                }
                self.trial = Trial::Base;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the climber against a concave IPC function of the share with
    /// its maximum at `optimum`.
    fn converge(optimum: f64, epochs: usize) -> f64 {
        let mut hc = HillClimb::new();
        for _ in 0..epochs {
            let share = hc.share(0);
            let ipc = 2.0 - (share - optimum).abs();
            hc.on_epoch(ipc);
        }
        hc.base_share()
    }

    #[test]
    fn climbs_toward_a_high_optimum() {
        let share = converge(0.8, 300);
        assert!((share - 0.8).abs() < 0.05, "share {share}");
    }

    #[test]
    fn climbs_toward_a_low_optimum() {
        let share = converge(0.2, 300);
        assert!((share - 0.2).abs() < 0.05, "share {share}");
    }

    #[test]
    fn stays_at_even_split_if_optimal() {
        let share = converge(0.5, 120);
        assert!((share - 0.5).abs() < 0.05, "share {share}");
    }

    #[test]
    fn shares_are_complementary_and_bounded() {
        let mut hc = HillClimb::new();
        for i in 0..50 {
            let s0 = hc.share(0);
            let s1 = hc.share(1);
            assert!((s0 + s1 - 1.0).abs() < 1e-12);
            assert!((MIN_SHARE..=1.0 - MIN_SHARE).contains(&s0));
            hc.on_epoch(1.0 + (i % 3) as f64 * 0.1);
        }
    }

    #[test]
    fn restore_resets_trial_state() {
        let mut hc = HillClimb::new();
        hc.on_epoch(1.0); // now in the Up trial
        hc.restore(0.7);
        assert_eq!(hc.share(0), 0.7);
        assert_eq!(hc.base_share(), 0.7);
    }

    #[test]
    fn restore_clamps_extreme_shares() {
        let mut hc = HillClimb::new();
        hc.restore(0.01);
        assert_eq!(hc.base_share(), MIN_SHARE);
    }
}
