//! Fetch Priority & Gating controllers.
//!
//! A controller owns the PG policy and the gating threshold. The pipeline
//! queries [`PgController::policy`] / [`PgController::share`] every cycle
//! and reports each finished Hill-Climbing epoch's per-thread IPC through
//! [`PgController::on_epoch`]; what scalar the Bandit rewards itself with
//! is the controller's [`RewardMetric`].

use crate::hill_climb::HillClimb;
use crate::policies::PgPolicy;
use mab_core::{reward, AlgorithmKind, BanditAgent, BanditConfig, ConfigError};
use serde::{Deserialize, Serialize};

/// Per-thread IPC observed over one Hill-Climbing epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochIpc {
    /// IPC of each hardware thread over the epoch.
    pub per_thread: [f64; 2],
}

impl EpochIpc {
    /// Builds an observation from a summed IPC split evenly — convenient
    /// for tests that only care about the aggregate.
    pub fn from_sum(sum: f64) -> Self {
        EpochIpc {
            per_thread: [sum / 2.0; 2],
        }
    }

    /// Summed IPC (the paper's default SMT metric, §6.4).
    pub fn sum(&self) -> f64 {
        self.per_thread[0] + self.per_thread[1]
    }
}

/// Which scalar the Bandit extracts from an epoch observation as its reward
/// (§6.4: "Bandit can easily optimize other metrics, such as the average
/// weighted IPC or harmonic mean of weighted IPC by simply changing the
/// Bandit reward").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RewardMetric {
    /// Sum of per-thread IPCs (throughput; the paper's evaluation metric).
    SumIpc,
    /// Average weighted IPC: mean of per-thread IPCs divided by the
    /// threads' isolated (single-thread) IPCs.
    WeightedIpc {
        /// Isolated IPC of each thread.
        isolated: [f64; 2],
    },
    /// Harmonic mean of weighted IPCs (balances throughput and fairness).
    HarmonicWeighted {
        /// Isolated IPC of each thread.
        isolated: [f64; 2],
    },
}

impl RewardMetric {
    /// Extracts the reward scalar from an epoch observation.
    pub fn reward(&self, epoch: EpochIpc) -> f64 {
        match *self {
            RewardMetric::SumIpc => epoch.sum(),
            RewardMetric::WeightedIpc { isolated } => {
                let w0 = epoch.per_thread[0] / isolated[0].max(1e-9);
                let w1 = epoch.per_thread[1] / isolated[1].max(1e-9);
                (w0 + w1) / 2.0
            }
            RewardMetric::HarmonicWeighted { isolated } => {
                let weighted = [
                    epoch.per_thread[0] / isolated[0].max(1e-9),
                    epoch.per_thread[1] / isolated[1].max(1e-9),
                ];
                reward::harmonic_mean_weighted(&weighted)
            }
        }
    }
}

/// A source of the fetch PG policy and gating shares.
pub trait PgController {
    /// The PG policy in effect.
    fn policy(&self) -> PgPolicy;

    /// The occupancy share thread `thread` may hold in gated structures.
    fn share(&self, thread: usize) -> f64;

    /// Reports a finished Hill-Climbing epoch's per-thread IPC.
    fn on_epoch(&mut self, epoch: EpochIpc);
}

/// A fixed PG policy with Hill-Climbing threshold adaptation — the
/// building block of the Fig. 5 design-space sweep and the best-static-arm
/// oracle of §6.4.
///
/// # Example
///
/// ```
/// use mab_smtsim::controllers::{PgController, StaticPgController};
/// use mab_smtsim::policies::PgPolicy;
///
/// let c = StaticPgController::new("LSQC_1111".parse().unwrap());
/// assert_eq!(c.policy().to_string(), "LSQC_1111");
/// ```
#[derive(Debug, Clone)]
pub struct StaticPgController {
    policy: PgPolicy,
    hill_climb: HillClimb,
}

impl StaticPgController {
    /// Creates a controller pinned to `policy`.
    pub fn new(policy: PgPolicy) -> Self {
        StaticPgController {
            policy,
            hill_climb: HillClimb::new(),
        }
    }

    /// The Hill-Climbing state (for tests and reports).
    pub fn hill_climb(&self) -> &HillClimb {
        &self.hill_climb
    }
}

impl PgController for StaticPgController {
    fn policy(&self) -> PgPolicy {
        self.policy
    }

    fn share(&self, thread: usize) -> f64 {
        self.hill_climb.share(thread)
    }

    fn on_epoch(&mut self, epoch: EpochIpc) {
        self.hill_climb.on_epoch(epoch.sum());
    }
}

/// The Choi policy (`IC_1011` + Hill Climbing), the paper's main SMT
/// baseline.
#[derive(Debug, Clone)]
pub struct ChoiController {
    inner: StaticPgController,
}

impl Default for ChoiController {
    fn default() -> Self {
        ChoiController::new()
    }
}

impl ChoiController {
    /// Creates the Choi controller.
    pub fn new() -> Self {
        ChoiController {
            inner: StaticPgController::new(PgPolicy::CHOI),
        }
    }
}

impl PgController for ChoiController {
    fn policy(&self) -> PgPolicy {
        self.inner.policy()
    }

    fn share(&self, thread: usize) -> f64 {
        self.inner.share(thread)
    }

    fn on_epoch(&mut self, epoch: EpochIpc) {
        self.inner.on_epoch(epoch);
    }
}

/// Bandit step length during the initial round-robin phase, in
/// Hill-Climbing epochs (Table 6: *bandit step-RR* = 32 epochs).
pub const PAPER_STEP_RR_EPOCHS: u32 = 32;
/// Bandit step length in the main loop (Table 6: 2 epochs).
pub const PAPER_STEP_EPOCHS: u32 = 2;

/// The Micro-Armed Bandit controlling the fetch PG policy (paper §5.3).
///
/// The bandit runs *on top of* Hill Climbing: each arm is a PG policy, the
/// reward is the mean epoch IPC over the bandit step, and each arm's
/// Hill-Climbing threshold is saved and restored when the arm changes.
/// During the initial round-robin phase, arms are held for the longer
/// *bandit step-RR* so Hill Climbing has time to converge before the arm
/// is judged.
pub struct BanditController {
    agent: BanditAgent,
    arms: Vec<PgPolicy>,
    metric: RewardMetric,
    hill_climb: HillClimb,
    /// Saved Hill-Climbing base share per arm.
    saved_shares: Vec<f64>,
    current_arm: usize,
    epochs_in_step: u32,
    step_epochs: u32,
    step_rr_epochs: u32,
    ipc_accumulator: f64,
    history: Vec<usize>,
}

impl std::fmt::Debug for BanditController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BanditController")
            .field("arm", &self.arms[self.current_arm])
            .field("steps", &self.agent.steps())
            .finish()
    }
}

impl BanditController {
    /// The paper's tuned SMT configuration (Table 6): DUCB with γ = 0.975,
    /// c = 0.01 over the 6 arms of Table 1, step-RR = 32 epochs, step = 2.
    pub fn paper_default(seed: u64) -> Self {
        BanditController::with_algorithm(
            AlgorithmKind::Ducb {
                gamma: 0.975,
                c: 0.01,
            },
            seed,
        )
    }

    /// Paper arms with a different MAB algorithm (Table 9 comparisons).
    pub fn with_algorithm(algorithm: AlgorithmKind, seed: u64) -> Self {
        let arms = PgPolicy::bandit_arms().to_vec();
        let config = BanditConfig::builder(arms.len())
            .algorithm(algorithm)
            .seed(seed)
            .build()
            .expect("paper configuration is valid");
        BanditController::new(config, arms, PAPER_STEP_EPOCHS, PAPER_STEP_RR_EPOCHS)
            .expect("arm count matches config")
    }

    /// Fully custom construction.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `arms` is empty or its length does not
    /// match the agent configuration.
    pub fn new(
        config: BanditConfig,
        arms: Vec<PgPolicy>,
        step_epochs: u32,
        step_rr_epochs: u32,
    ) -> Result<Self, ConfigError> {
        if arms.is_empty() {
            return Err(ConfigError::NoArms);
        }
        if config.arms() != arms.len() {
            return Err(ConfigError::ArmOutOfRange {
                arm: config.arms(),
                arms: arms.len(),
            });
        }
        let mut agent = BanditAgent::new(config);
        let first = agent.select_arm().index();
        let n = arms.len();
        Ok(BanditController {
            agent,
            arms,
            metric: RewardMetric::SumIpc,
            hill_climb: HillClimb::new(),
            saved_shares: vec![0.5; n],
            current_arm: first,
            epochs_in_step: 0,
            step_epochs: step_epochs.max(1),
            step_rr_epochs: step_rr_epochs.max(1),
            ipc_accumulator: 0.0,
            history: vec![first],
        })
    }

    /// Replaces the reward metric (§6.4; default [`RewardMetric::SumIpc`]).
    pub fn set_reward_metric(&mut self, metric: RewardMetric) {
        self.metric = metric;
    }

    /// The reward metric in effect.
    pub fn reward_metric(&self) -> RewardMetric {
        self.metric
    }

    /// Sequence of arm indices selected so far (Fig. 7).
    pub fn history(&self) -> &[usize] {
        &self.history
    }

    /// Read access to the underlying agent.
    pub fn agent(&self) -> &BanditAgent {
        &self.agent
    }

    fn step_target(&self) -> u32 {
        if self.agent.in_initial_round_robin() {
            self.step_rr_epochs
        } else {
            self.step_epochs
        }
    }
}

impl PgController for BanditController {
    fn policy(&self) -> PgPolicy {
        self.arms[self.current_arm]
    }

    fn share(&self, thread: usize) -> f64 {
        self.hill_climb.share(thread)
    }

    fn on_epoch(&mut self, epoch: EpochIpc) {
        // Hill Climbing always optimizes the summed IPC (as in the original
        // paper); the Bandit's reward follows the configured metric.
        self.hill_climb.on_epoch(epoch.sum());
        self.ipc_accumulator += self.metric.reward(epoch);
        self.epochs_in_step += 1;
        let target = self.step_target();
        if self.epochs_in_step < target {
            return;
        }
        let reward = self.ipc_accumulator / self.epochs_in_step as f64;
        self.epochs_in_step = 0;
        self.ipc_accumulator = 0.0;
        self.agent.observe_reward(reward);
        // Save this arm's threshold, switch, restore the new arm's.
        self.saved_shares[self.current_arm] = self.hill_climb.base_share();
        let next = self.agent.select_arm().index();
        if next != self.current_arm {
            mab_telemetry::count!(ArmSwitches);
            self.hill_climb.restore(self.saved_shares[next]);
        }
        self.current_arm = next;
        self.history.push(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_controller_keeps_its_policy() {
        let mut c = StaticPgController::new(PgPolicy::ICOUNT);
        for _ in 0..100 {
            c.on_epoch(EpochIpc::from_sum(1.0));
        }
        assert_eq!(c.policy(), PgPolicy::ICOUNT);
    }

    #[test]
    fn choi_controller_uses_ic_1011() {
        assert_eq!(ChoiController::new().policy(), PgPolicy::CHOI);
    }

    #[test]
    fn bandit_round_robin_holds_arms_for_step_rr() {
        let mut c = BanditController::paper_default(1);
        let first = c.policy();
        // 31 epochs in: still the same (RR step is 32 epochs).
        for _ in 0..31 {
            c.on_epoch(EpochIpc::from_sum(1.0));
        }
        assert_eq!(c.policy(), first);
        c.on_epoch(EpochIpc::from_sum(1.0));
        assert_ne!(c.policy(), first, "arm advances after step-RR epochs");
    }

    #[test]
    fn bandit_walks_all_arms_in_round_robin() {
        let mut c = BanditController::paper_default(2);
        for _ in 0..(6 * 32) {
            c.on_epoch(EpochIpc::from_sum(1.0));
        }
        let h = c.history();
        assert_eq!(&h[..6], &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn bandit_prefers_the_rewarding_arm() {
        let mut c = BanditController::with_algorithm(
            AlgorithmKind::Ducb {
                gamma: 0.98,
                c: 0.05,
            },
            3,
        );
        // Arm 4 (LSQC_1111) yields double IPC.
        for _ in 0..2000 {
            let ipc = if c.current_arm == 4 { 2.0 } else { 1.0 };
            c.on_epoch(EpochIpc::from_sum(ipc));
        }
        let tail = &c.history()[c.history().len() - 50..];
        let arm4 = tail.iter().filter(|&&a| a == 4).count();
        assert!(arm4 > 25, "arm 4 picked {arm4}/50 in the tail");
    }

    #[test]
    fn thresholds_are_saved_and_restored_per_arm() {
        let mut c = BanditController::paper_default(4);
        // Drive the RR phase with IPCs that push the threshold up under arm 0.
        for i in 0..32 {
            let share = c.share(0);
            let _ = i;
            c.on_epoch(EpochIpc::from_sum(1.0 + share)); // higher share pays
        }
        // After switching away from arm 0, its share was saved.
        let saved = c.saved_shares[0];
        assert!(saved >= 0.5, "saved share {saved}");
        // The fresh arm starts from its own (default) share.
        assert_eq!(c.hill_climb.base_share(), 0.5);
    }

    #[test]
    fn reward_metrics_extract_expected_scalars() {
        let epoch = EpochIpc {
            per_thread: [1.0, 0.5],
        };
        assert_eq!(RewardMetric::SumIpc.reward(epoch), 1.5);
        let weighted = RewardMetric::WeightedIpc {
            isolated: [2.0, 1.0],
        };
        assert!((weighted.reward(epoch) - 0.5).abs() < 1e-12);
        let harmonic = RewardMetric::HarmonicWeighted {
            isolated: [2.0, 1.0],
        };
        assert!((harmonic.reward(epoch) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn harmonic_metric_prefers_fair_arms() {
        // Arm 0: fair (both threads at half speed). Arm 1: starves thread 1
        // but has the same summed IPC. The harmonic-weighted bandit must
        // prefer the fair arm.
        let mut c = BanditController::with_algorithm(
            AlgorithmKind::Ducb {
                gamma: 0.98,
                c: 0.05,
            },
            7,
        );
        c.set_reward_metric(RewardMetric::HarmonicWeighted {
            isolated: [1.0, 1.0],
        });
        for _ in 0..1500 {
            let epoch = if c.current_arm == 0 {
                EpochIpc {
                    per_thread: [0.5, 0.5],
                }
            } else {
                EpochIpc {
                    per_thread: [0.9, 0.1],
                }
            };
            c.on_epoch(epoch);
        }
        let tail = &c.history()[c.history().len() - 50..];
        let fair = tail.iter().filter(|&&a| a == 0).count();
        assert!(
            fair > 25,
            "fair arm picked {fair}/50 under the harmonic metric"
        );
    }

    #[test]
    fn mismatched_arms_are_rejected() {
        let config = BanditConfig::builder(3).build().unwrap();
        assert!(BanditController::new(config, PgPolicy::bandit_arms().to_vec(), 2, 32).is_err());
    }
}
