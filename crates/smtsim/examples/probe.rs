use mab_smtsim::policies::PgPolicy;
use mab_smtsim::{config::SmtParams, controllers::StaticPgController, pipeline::SmtPipeline};
use mab_workloads::smt;
use std::time::Instant;

fn main() {
    for (na, nb) in [
        ("gcc", "xz"),
        ("exchange2", "mcf"),
        ("lbm", "mcf"),
        ("gcc", "lbm"),
    ] {
        let a = smt::thread_by_name(na).unwrap();
        let b = smt::thread_by_name(nb).unwrap();
        let mut pipe = SmtPipeline::new(SmtParams::test_scale(), [a, b], 7);
        let mut ctrl = StaticPgController::new(PgPolicy::ICOUNT);
        let t0 = Instant::now();
        let stats = pipe.run_with(&mut ctrl, 20_000);
        eprintln!(
            "{na}/{nb}: cycles={} ipc=({:.3},{:.3}) sum={:.3} rename={:?} [{:?}]",
            stats.cycles,
            stats.ipc(0),
            stats.ipc(1),
            stats.sum_ipc(),
            stats.rename,
            t0.elapsed()
        );
    }
}
