#!/usr/bin/env bash
# Round 2: SMT experiments with scaled epochs (the round-1 SMT runs used
# unscaled step-RR and are superseded), plus larger prefetch runs.
#
# Usage: run_round2.sh [--jobs N] [--trace-dir DIR] [--ledger DIR] [--monitor ADDR]
#
# --monitor ADDR (or MAB_MONITOR=ADDR) serves live /metrics, /status and
# /events from each experiment — see run_all_experiments.sh.
#
# --jobs N (or JOBS=N) fans each sweep out over N worker threads; reports
# are bit-identical at any worker count (see mab-runner).
#
# --trace-dir DIR (or TRACE_DIR=DIR) records/replays workload streams in a
# shared cache; point it at the same directory as round 1 to reuse the
# traces already recorded there. Replay is byte-identical to generation.
#
# Outputs land in results/round2/ so they never clobber the round-1 files:
# each round's artifacts are addressed by directory, not by which script
# happened to run last. Ledger records go to the shared results/ledger by
# default (LEDGER=DIR overrides, LEDGER= disables): rounds are
# distinguished by config digest, so one history spans both.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-}"
TRACE_DIR="${TRACE_DIR:-}"
LEDGER="${LEDGER-results/ledger}"
MONITOR="${MAB_MONITOR:-}"
while [ $# -gt 0 ]; do
  case "$1" in
    --jobs|-j)
      JOBS="$2"; shift 2 ;;
    --trace-dir)
      TRACE_DIR="$2"; shift 2 ;;
    --ledger)
      LEDGER="$2"; shift 2 ;;
    --monitor)
      MONITOR="$2"; shift 2 ;;
    *)
      echo "usage: $0 [--jobs N] [--trace-dir DIR] [--ledger DIR] [--monitor ADDR]" >&2; exit 2 ;;
  esac
done

OUT=results/round2
mkdir -p "$OUT"

run() {
  local name="$1"; shift
  echo "=== running $name $* ==="
  cargo run --release -q -p mab-experiments --features telemetry --bin "$name" -- "$@" \
    ${JOBS:+--jobs "$JOBS"} \
    ${TRACE_DIR:+--trace-dir "$TRACE_DIR"} \
    ${LEDGER:+--ledger "$LEDGER"} \
    ${MONITOR:+--monitor "$MONITOR"} \
    --telemetry "$OUT/$name.jsonl" --trace "$OUT/$name.trace.json" \
    >"$OUT/$name.txt" 2>"$OUT/$name.log"
  echo "--- wrote $OUT/$name.txt"
}

run tab09_tuneset_smt --instructions 100000 --mixes 30
run fig15_rename      --instructions 80000 --mixes 40
run fig05_pg_space    --instructions 80000 --mixes 8
run fig13_smt_scurve  --instructions 80000 --mixes 150
run fig07_exploration --instructions 2500000
run fig14_fourcore    --instructions 300000
run fig12_multilevel  --instructions 1000000
run fig08_singlecore  --instructions 1500000
echo "round 2 done"
