#!/usr/bin/env bash
# Round 2: SMT experiments with scaled epochs (the round-1 SMT runs used
# unscaled step-RR and are superseded), plus larger prefetch runs.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
run() {
  local name="$1"; shift
  echo "=== running $name $* ==="
  cargo run --release -q -p mab-experiments --features telemetry --bin "$name" -- "$@" \
    --telemetry "results/$name.jsonl" --trace "results/$name.trace.json" \
    >"results/$name.txt" 2>"results/$name.log"
  echo "--- wrote results/$name.txt"
}
run tab09_tuneset_smt --instructions 100000 --mixes 30
run fig15_rename      --instructions 80000 --mixes 40
run fig05_pg_space    --instructions 80000 --mixes 8
run fig13_smt_scurve  --instructions 80000 --mixes 150
run fig07_exploration --instructions 2500000
run fig14_fourcore    --instructions 300000
run fig12_multilevel  --instructions 1000000
run fig08_singlecore  --instructions 1500000
echo "round 2 done"
