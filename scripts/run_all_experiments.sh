#!/usr/bin/env bash
# Regenerates every table and figure, teeing outputs into results/.
# Sizes below are the "recorded run" configuration documented in
# EXPERIMENTS.md (scaled down from the paper's 1B-instruction traces to
# laptop scale; pass larger --instructions for higher fidelity).
#
# Usage: run_all_experiments.sh [--jobs N] [--trace-dir DIR]
#
# --jobs N (or JOBS=N in the environment) fans each sweep out over N worker
# threads via mab-runner. Reports are bit-identical at any worker count, so
# pick whatever the machine has; the default lets each binary use all cores.
#
# --trace-dir DIR (or TRACE_DIR=DIR in the environment) records every
# workload stream to DIR on first use and replays it afterwards — across
# experiments and across reruns of this script. Replay is byte-identical to
# generator mode (see tests/replay.rs), so results are unchanged; reruns
# just skip regenerating the inputs.
#
# Every run is built with --features telemetry and writes, alongside the
# table in results/$name.txt:
#   results/$name.jsonl       telemetry export (counters, histograms, events)
#   results/$name.trace.json  Perfetto decision timeline (ui.perfetto.dev)
# Analyse them with `cargo run -p mab-inspect -- report results/$name.jsonl`.
#
# Each run also appends one record (config digest, wall time, key stats,
# artifact pointers) to the run ledger — LEDGER=DIR overrides the default
# results/ledger, LEDGER= (empty) disables recording. Query it with
# `cargo run -p mab-inspect -- history | trend | regress`.
#
# --monitor ADDR (or MAB_MONITOR=ADDR) serves live /metrics, /status and
# /events from each experiment while it runs — follow the batch with
# `cargo run -p mab-inspect -- watch ADDR`. Experiments run one at a time,
# so a single fixed port carries the whole script.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-}"
TRACE_DIR="${TRACE_DIR:-}"
LEDGER="${LEDGER-results/ledger}"
MONITOR="${MAB_MONITOR:-}"
while [ $# -gt 0 ]; do
  case "$1" in
    --jobs|-j)
      JOBS="$2"; shift 2 ;;
    --trace-dir)
      TRACE_DIR="$2"; shift 2 ;;
    --ledger)
      LEDGER="$2"; shift 2 ;;
    --monitor)
      MONITOR="$2"; shift 2 ;;
    *)
      echo "usage: $0 [--jobs N] [--trace-dir DIR] [--ledger DIR] [--monitor ADDR]" >&2; exit 2 ;;
  esac
done

mkdir -p results

run() {
  local name="$1"; shift
  echo "=== running $name $* ==="
  cargo run --release -q -p mab-experiments --features telemetry --bin "$name" -- "$@" \
    ${JOBS:+--jobs "$JOBS"} \
    ${TRACE_DIR:+--trace-dir "$TRACE_DIR"} \
    ${LEDGER:+--ledger "$LEDGER"} \
    ${MONITOR:+--monitor "$MONITOR"} \
    --telemetry "results/$name.jsonl" --trace "results/$name.trace.json" \
    >"results/$name.txt" 2>"results/$name.log"
  echo "--- wrote results/$name.txt"
}

run tab_storage
run fig02_homogeneity --instructions 1500000
run fig07_exploration --instructions 2500000
run fig08_singlecore  --instructions 700000
run fig09_accuracy    --instructions 600000
run fig10_bandwidth   --instructions 500000
run fig11_altcache    --instructions 700000
run fig12_multilevel  --instructions 500000
run fig14_fourcore    --instructions 150000
run tab08_tuneset_prefetch --instructions 500000
run fig05_pg_space    --instructions 50000 --mixes 8
run tab09_tuneset_smt --instructions 60000 --mixes 30
run fig13_smt_scurve  --instructions 50000 --mixes 231
run fig15_rename      --instructions 60000 --mixes 40
run ablations         --instructions 600000
echo "all experiments done"
