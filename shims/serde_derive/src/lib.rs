//! No-op stand-ins for `serde_derive`'s `Serialize`/`Deserialize` derives.
//!
//! The workspace only uses serde derives as annotations — nothing is actually
//! serialized through serde at runtime (telemetry export is hand-rolled), and
//! the build environment cannot fetch the real crate. These derives expand to
//! nothing, which satisfies the `#[derive(Serialize, Deserialize)]` sites
//! without pulling in a full serialization framework.

use proc_macro::TokenStream;

/// Expands to nothing; marks the type as serde-serializable in source only.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; marks the type as serde-deserializable in source only.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
