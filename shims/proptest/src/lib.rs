//! Offline shim for the subset of the [`proptest`](https://docs.rs/proptest)
//! API exercised by this workspace's property tests.
//!
//! The build environment cannot reach crates.io, so this crate provides a
//! small random-testing harness with the same surface:
//!
//! - [`Strategy`] with `prop_map` and `boxed`, implemented for numeric
//!   ranges, tuples, [`Just`], [`prop::collection::vec`] and
//!   [`prop::bool::ANY`];
//! - [`prop_oneof!`], [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`] and [`prop_assume!`];
//! - [`ProptestConfig::with_cases`].
//!
//! Compared to real proptest there is **no shrinking**: a failing case
//! reports the case index under a fixed per-test RNG seed, which reproduces
//! deterministically on re-run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a generated test case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case did not satisfy a [`prop_assume!`]; it is retried, not failed.
    Reject,
    /// A [`prop_assert!`]-family assertion failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of [`Strategy::Value`].
///
/// Object-safe: `prop_map` and `boxed` carry `where Self: Sized` so
/// `Box<dyn Strategy<Value = T>>` works.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives; built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Namespaced strategy constructors, mirroring the `proptest::prop` module
/// hierarchy (`prop::collection::vec`, `prop::bool::ANY`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: core::ops::Range<usize>,
        }

        /// Generates vectors whose length lies in `size` (half-open).
        pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty size range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy yielding uniform booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniformly random booleans.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut StdRng) -> bool {
                rng.gen()
            }
        }
    }
}

#[doc(hidden)]
pub fn __rng(test_name: &str) -> StdRng {
    // Per-test deterministic seed: FNV-1a over the test name, so every test
    // gets a distinct but reproducible stream.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Uniform choice between strategies: `prop_oneof![s1, s2, ...]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts inside a [`proptest!`] body; failure reports the case message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (retried, not failed) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Supports an optional leading `#![proptest_config(expr)]` followed by any
/// number of `fn name(arg in strategy, ...) { body }` items carrying their
/// own attributes (including `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::__rng(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).saturating_add(1000),
                    "too many prop_assume! rejections ({} attempts for {} cases)",
                    attempts,
                    config.cases
                );
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome = (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} (attempt {}) of {} failed:\n{}",
                            passed + 1, attempts, stringify!($name), msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use crate::{BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in -2.0..2.0f64) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in ((0usize..4), (0u64..10)).prop_map(|(a, b)| a as u64 + b),
        ) {
            prop_assert!(pair < 14);
        }

        #[test]
        fn vec_lengths_respect_range(
            v in prop::collection::vec((0u64..64, prop::bool::ANY), 5..30),
        ) {
            prop_assert!((5..30).contains(&v.len()));
            for (line, _flag) in v {
                prop_assert!(line < 64);
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::__rng("oneof");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
