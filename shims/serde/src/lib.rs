//! Offline shim for the slice of `serde` this workspace references.
//!
//! Types across the workspace carry `#[derive(Serialize, Deserialize)]`
//! purely as forward-looking annotations; no code path serializes through
//! serde (exporters are hand-rolled). Since the build environment cannot
//! reach crates.io, this shim provides marker traits plus no-op derive
//! macros so those annotations keep compiling.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
