//! Offline shim for the subset of the [`criterion`](https://docs.rs/criterion)
//! API used by `crates/bench`.
//!
//! The build environment cannot reach crates.io, so this crate provides a
//! small wall-clock benchmarking harness with the same surface: `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Methodology: each benchmark runs a short calibration pass to pick an
//! iteration count targeting ~`measurement_ms` of work, performs a warm-up,
//! then takes several timed samples and reports the median ns/iter. This is
//! far simpler than real criterion (no outlier rejection, no statistical
//! regression) but is stable enough for the relative comparisons the
//! workspace's benches make.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier re-exported for convenience (benches may import it
/// from either `std::hint` or `criterion`).
pub use std::hint::black_box;

/// Identifies one benchmark within a group, e.g. `ducb/16`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and an input parameter into an id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id without a parameter component.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Units processed per iteration; used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the closure under test; drives the timed loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// One recorded benchmark result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/function/param`).
    pub id: String,
    /// Median nanoseconds per iteration across samples.
    pub ns_per_iter: f64,
}

/// The harness entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    results: Vec<BenchResult>,
    /// Target duration for one sample, in milliseconds.
    measurement_ms: u64,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            results: Vec::new(),
            // Keep the harness quick: the workspace's benches iterate many
            // configurations and CI time matters more than tight confidence
            // intervals here.
            measurement_ms: 60,
            samples: 7,
        }
    }
}

impl Criterion {
    /// Overrides the per-sample measurement time.
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_ms = time.as_millis().max(1) as u64;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id.to_string(), None, f);
        self
    }

    /// Runs two benchmarks with interleaved samples (shim extension, not
    /// part of the real criterion API).
    ///
    /// A/B comparisons whose arms run back to back as separate
    /// `bench_function` calls are exposed to slow drift — frequency
    /// scaling, a noisy neighbor — landing on one arm's whole measurement
    /// window and biasing the ratio. Here each sample round times arm A
    /// then arm B, so drift hits both arms alike and the medians stay
    /// comparable. Results are recorded under `id_a` / `id_b` exactly as
    /// if each arm had run through [`Criterion::bench_function`].
    pub fn bench_pair<FA, FB>(
        &mut self,
        id_a: &str,
        id_b: &str,
        mut fa: FA,
        mut fb: FB,
    ) -> &mut Self
    where
        FA: FnMut(&mut Bencher),
        FB: FnMut(&mut Bencher),
    {
        let iters_a = self.calibrate(&mut fa);
        let iters_b = self.calibrate(&mut fb);
        let mut samples_a = Vec::with_capacity(self.samples);
        let mut samples_b = Vec::with_capacity(self.samples);
        // Round 0 warms both arms and is discarded.
        for i in 0..=self.samples {
            for (f, iters, samples) in [
                (
                    &mut fa as &mut dyn FnMut(&mut Bencher),
                    iters_a,
                    &mut samples_a,
                ),
                (&mut fb, iters_b, &mut samples_b),
            ] {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                if i > 0 {
                    samples.push(b.elapsed.as_secs_f64() * 1e9 / iters as f64);
                }
            }
        }
        for (id, mut samples) in [(id_a, samples_a), (id_b, samples_b)] {
            samples.sort_by(|a, b| a.total_cmp(b));
            let ns = samples[samples.len() / 2];
            println!("{id:<50} {ns:>14.1} ns/iter");
            self.results.push(BenchResult {
                id: id.to_string(),
                ns_per_iter: ns,
            });
        }
        self
    }

    /// All results recorded so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Median ns/iter for the benchmark whose id matches `id` exactly.
    pub fn result_ns(&self, id: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.ns_per_iter)
    }

    /// Grows the iteration count until one sample takes at least
    /// ~`measurement_ms`.
    fn calibrate<F: FnMut(&mut Bencher)>(&self, f: &mut F) -> u64 {
        let target = Duration::from_millis(self.measurement_ms);
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= target || iters >= 1 << 40 {
                return iters;
            }
            let grow = if b.elapsed.is_zero() {
                16.0
            } else {
                (target.as_secs_f64() / b.elapsed.as_secs_f64()).clamp(1.2, 16.0)
            };
            iters = ((iters as f64 * grow).ceil() as u64).max(iters + 1);
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        let iters = self.calibrate(&mut f);

        // Warm-up sample, then timed samples.
        let mut samples = Vec::with_capacity(self.samples);
        for i in 0..=self.samples {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if i > 0 {
                samples.push(b.elapsed.as_secs_f64() * 1e9 / iters as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let ns = samples[samples.len() / 2];

        let thr = match throughput {
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                format!("  ({:.1} Melem/s)", n as f64 / ns * 1e3)
            }
            Some(Throughput::Bytes(n)) if ns > 0.0 => {
                format!("  ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("{id:<50} {ns:>14.1} ns/iter{thr}");
        self.results.push(BenchResult {
            id,
            ns_per_iter: ns,
        });
    }
}

/// A named set of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim picks its own sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Sets the units-per-iteration used in throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark identified by name only.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(full, self.throughput, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(full, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (consumes it, matching the real API).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            let _ = $config;
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
///
/// Cargo passes `--bench` (and possibly filter args) to the binary; the shim
/// ignores them and runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.results().len(), 1);
        assert!(c.result_ns("noop").unwrap() >= 0.0);
    }

    #[test]
    fn bench_pair_records_both_arms() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.bench_pair(
            "pair/a",
            "pair/b",
            |b| b.iter(|| black_box(1 + 1)),
            |b| b.iter(|| black_box(2 + 2)),
        );
        assert!(c.result_ns("pair/a").is_some());
        assert!(c.result_ns("pair/b").is_some());
    }

    #[test]
    fn group_ids_are_namespaced() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(10));
            g.bench_with_input(BenchmarkId::new("f", 4), &4u64, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert!(c.result_ns("g/f/4").is_some());
    }
}
