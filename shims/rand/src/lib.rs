//! Offline shim for the subset of the [`rand` 0.8](https://docs.rs/rand/0.8)
//! API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a tiny, deterministic reimplementation instead of the real crate:
//!
//! - [`rngs::StdRng`] — a xoshiro256++ generator seeded through SplitMix64.
//!   It does **not** produce the same stream as upstream `StdRng` (ChaCha12),
//!   but it is a high-quality, reproducible PRNG, which is all the simulators
//!   require.
//! - [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_entropy`].
//! - [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`] for the primitive
//!   types and range flavours the workspace exercises.
//!
//! Everything is `no_std`-friendly except `from_entropy`, which falls back to
//! a fixed seed to keep runs reproducible.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;

    /// Upstream draws entropy from the OS; the shim stays deterministic so
    /// simulation runs are reproducible by construction.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E37_79B9_7F4A_7C15)
    }
}

/// Types that can be sampled uniformly from a generator, mirroring the role
/// of upstream's `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges (and range-like shapes) that can produce one uniform sample.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + u * (end - start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level sampling helpers, automatically implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64 — a fast, reproducible stand-in
    /// for upstream's `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the shim's `StdRng` is already small.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5usize..=7);
            assert!((5..=7).contains(&y));
            let z = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
