//! # Micro-Armed Bandit — umbrella crate
//!
//! This crate re-exports the entire Micro-Armed Bandit reproduction workspace
//! so that examples and integration tests can use a single dependency. See
//! the individual crates for the actual implementations:
//!
//! - [`mab_core`] — the paper's contribution: Multi-Armed Bandit algorithms
//!   (ε-Greedy, UCB, DUCB) and the hardware `BanditAgent` model.
//! - [`mab_workloads`] — synthetic trace and SMT-thread generators standing in
//!   for the SPEC/PARSEC/Ligra/CloudSuite traces used by the paper.
//! - [`mab_traces`] — on-disk trace container (record/replay, ChampSim
//!   import) behind the `mab-trace` CLI.
//! - [`mab_memsim`] — trace-driven cache-hierarchy/core/DRAM simulator
//!   (ChampSim-class substrate).
//! - [`mab_prefetch`] — every prefetcher the paper evaluates, plus the
//!   Bandit-orchestrated composite prefetcher.
//! - [`mab_smtsim`] — cycle-level 2-way SMT pipeline simulator with fetch
//!   Priority & Gating policies and Hill Climbing.
//! - [`mab_experiments`] — the harness that regenerates every table and
//!   figure in the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use micro_armed_bandit::core::{BanditAgent, BanditConfig, AlgorithmKind};
//!
//! // A 3-arm DUCB agent; pretend arm 2 is the best action.
//! let config = BanditConfig::builder(3)
//!     .algorithm(AlgorithmKind::Ducb { gamma: 0.99, c: 0.1 })
//!     .build()
//!     .expect("valid config");
//! let mut agent = BanditAgent::new(config);
//! for _ in 0..200 {
//!     let arm = agent.select_arm();
//!     let reward = if arm.index() == 2 { 1.0 } else { 0.2 };
//!     agent.observe_reward(reward);
//! }
//! assert_eq!(agent.best_arm().index(), 2);
//! ```

pub use mab_core as core;
pub use mab_experiments as experiments;
pub use mab_memsim as memsim;
pub use mab_prefetch as prefetch;
pub use mab_smtsim as smtsim;
pub use mab_traces as traces;
pub use mab_workloads as workloads;
