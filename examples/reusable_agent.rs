//! Reusability demo: the same agent in a *third* decision-making problem.
//!
//! ```text
//! cargo run --example reusable_agent
//! ```
//!
//! The paper's closing argument is that one tiny agent design serves many
//! microarchitecture knobs. Here we point it at a toy DVFS governor: pick a
//! frequency/voltage state to maximize performance-per-watt for a workload
//! whose compute/memory balance shifts over time. Nothing in `mab-core`
//! changes — only the arm semantics and the reward.

use micro_armed_bandit::core::{AlgorithmKind, BanditAgent, BanditConfig};

/// Frequency states (GHz) with quadratic-ish power cost.
const FREQS: [f64; 5] = [1.0, 1.6, 2.2, 2.8, 3.4];

/// Instructions-per-second for a workload that is `compute` fraction
/// compute-bound (scales with frequency) and memory-bound otherwise.
fn perf(freq: f64, compute: f64) -> f64 {
    compute * freq + (1.0 - compute) * 1.2
}

/// The governor's reward: performance-squared per watt (an energy-delay
/// style metric, so that raising the clock pays off only when the workload
/// actually scales with frequency).
fn reward(freq: f64, compute: f64) -> f64 {
    let p = perf(freq, compute);
    p * p / power(freq)
}

fn power(freq: f64) -> f64 {
    0.5 + 0.35 * freq * freq
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = BanditConfig::builder(FREQS.len())
        .algorithm(AlgorithmKind::Ducb {
            gamma: 0.97,
            c: 0.08,
        })
        .seed(11)
        .build()?;
    let mut agent = BanditAgent::new(config);

    // Phase 1: compute-bound (high frequency pays). Phase 2: memory-bound
    // (high frequency burns power for nothing).
    let mut compute_phase_choice = 0;
    for step in 0..2000u32 {
        let compute = if step < 1000 { 0.9 } else { 0.15 };
        let arm = agent.select_arm();
        agent.observe_reward(reward(FREQS[arm.index()], compute));
        if step == 999 {
            compute_phase_choice = agent.best_arm().index();
            println!(
                "compute-bound phase: governor settled on {:.1} GHz",
                FREQS[compute_phase_choice]
            );
        }
    }
    let memory_phase_choice = agent.best_arm().index();
    println!(
        "memory-bound phase:  governor settled on {:.1} GHz",
        FREQS[memory_phase_choice]
    );
    assert!(
        memory_phase_choice < compute_phase_choice,
        "the governor backed off the clock when memory-bound"
    );
    Ok(())
}
