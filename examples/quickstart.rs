//! Quickstart: drive a Micro-Armed Bandit agent by hand.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The agent knows nothing about what its arms *mean* — that reusability is
//! the paper's point. Here the arms are just slot machines with different
//! payouts, one of which drifts mid-episode (a "phase change") to show why
//! the Discounted UCB algorithm is the default.

use micro_armed_bandit::core::{cost, AlgorithmKind, BanditAgent, BanditConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 4 arms, DUCB with a mild forgetting factor.
    let config = BanditConfig::builder(4)
        .algorithm(AlgorithmKind::Ducb {
            gamma: 0.98,
            c: 0.1,
        })
        .seed(7)
        .build()?;
    let mut agent = BanditAgent::new(config);

    // Phase 1: arm 2 pays best. Phase 2 (after step 400): arm 0 takes over.
    let payout = |step: u64, arm: usize| -> f64 {
        match (step < 400, arm) {
            (true, 2) => 1.0,
            (true, _) => 0.3,
            (false, 0) => 1.0,
            (false, _) => 0.3,
        }
    };

    for step in 0..800 {
        let arm = agent.select_arm();
        agent.observe_reward(payout(step, arm.index()));
        if step == 399 {
            println!(
                "before the phase change the agent prefers {}",
                agent.best_arm()
            );
        }
    }
    println!(
        "after the phase change the agent prefers  {}",
        agent.best_arm()
    );
    assert_eq!(agent.best_arm().index(), 0, "DUCB adapted to the new phase");

    println!(
        "\nthe whole agent state fits in {} bytes of hardware tables",
        cost::storage_bytes(4)
    );
    println!(
        "naive arm selection takes {} cycles; the overlapped design {} cycles",
        cost::naive_selection_latency(4, cost::OpLatencies::default()),
        cost::overlapped_selection_latency(cost::OpLatencies::default()),
    );
    Ok(())
}
