//! SMT fetch-policy comparison: run a 2-thread mix on the SMT pipeline
//! under plain ICount, the Choi policy, and the Micro-Armed Bandit.
//!
//! ```text
//! cargo run --release --example smt_fetch_policies [threadA] [threadB] [commits]
//! ```
//!
//! Try `lbm mcf` — a store-queue hog next to a pointer chaser — where
//! LSQ-aware policies (which Choi lacks) pay off.

use micro_armed_bandit::smtsim::{
    config::SmtParams,
    controllers::{BanditController, ChoiController, StaticPgController},
    pipeline::SmtPipeline,
    policies::PgPolicy,
};
use micro_armed_bandit::workloads::smt;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let a = args.next().unwrap_or_else(|| "lbm".to_string());
    let b = args.next().unwrap_or_else(|| "mcf".to_string());
    let commits: u64 = args
        .next()
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(60_000);
    let specs = [
        smt::thread_by_name(&a).ok_or(format!("unknown thread {a:?}"))?,
        smt::thread_by_name(&b).ok_or(format!("unknown thread {b:?}"))?,
    ];
    let params = SmtParams::default();
    println!("mix {a}+{b}, {commits} commits/thread, Table-5 pipeline\n");

    let run = |label: &str, result: micro_armed_bandit::smtsim::pipeline::SmtStats| {
        println!(
            "{label:10} sum-IPC {:.3}  (per-thread {:.3} / {:.3}; SQ-full {:>4.1}% of cycles)",
            result.sum_ipc(),
            result.ipc(0),
            result.ipc(1),
            result.rename.stalled_sq as f64 / result.cycles as f64 * 100.0,
        );
    };

    let mut pipe = SmtPipeline::new(params, specs.clone(), 42);
    run(
        "ICount",
        pipe.run(Box::new(StaticPgController::new(PgPolicy::ICOUNT)), commits),
    );

    let mut pipe = SmtPipeline::new(params, specs.clone(), 42);
    run("Choi", pipe.run(Box::new(ChoiController::new()), commits));

    let mut pipe = SmtPipeline::new(params, specs.clone(), 42);
    let mut bandit = BanditController::paper_default(42);
    let stats = pipe.run_with(&mut bandit, commits);
    run("Bandit", stats);
    println!(
        "\nBandit's policy trajectory (arm per bandit step): {:?}",
        bandit.history()
    );
    println!("arms: {:?}", PgPolicy::bandit_arms().map(|p| p.to_string()));
    Ok(())
}
