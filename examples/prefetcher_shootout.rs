//! Prefetcher shootout: simulate one application on the memory-hierarchy
//! substrate under every L2 prefetcher the paper compares.
//!
//! ```text
//! cargo run --release --example prefetcher_shootout [app] [instructions]
//! ```
//!
//! Try `lbm` (streaming — deep prefetching wins), `mcf` (pointer chasing —
//! nothing helps, and Bandit learns to mostly switch off), or `soplex`
//! (recurring spatial footprints — Bingo's specialty).

use micro_armed_bandit::memsim::{config::SystemConfig, System};
use micro_armed_bandit::prefetch::catalog;
use micro_armed_bandit::workloads::suites;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let app_name = args.next().unwrap_or_else(|| "lbm".to_string());
    let instructions: u64 = args
        .next()
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(1_000_000);
    let app = suites::app_by_name(&app_name)
        .ok_or_else(|| format!("unknown app {app_name:?}; try one of suites::all_apps()"))?;

    println!("app {app_name}, {instructions} instructions, Table-4 system\n");
    println!(
        "{:14} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "prefetcher", "IPC", "issued", "timely", "late", "wrong"
    );
    let mut baseline = 0.0;
    for name in ["none", "stride", "bingo", "mlop", "pythia", "bandit"] {
        let mut system = System::single_core(SystemConfig::default());
        system.set_prefetcher(0, catalog::build_l2(name, 42));
        let stats = system.run(&mut app.trace(42), instructions);
        if name == "none" {
            baseline = stats.ipc();
        }
        println!(
            "{:14} {:>7.3} {:>9} {:>9} {:>9} {:>9}   ({:+.1}% vs none)",
            name,
            stats.ipc(),
            stats.prefetch.issued,
            stats.prefetch.timely,
            stats.prefetch.late,
            stats.prefetch.wrong,
            (stats.ipc() / baseline - 1.0) * 100.0,
        );
    }
    Ok(())
}
