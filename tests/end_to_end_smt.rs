//! Cross-crate integration tests: workloads → smtsim → core.

use micro_armed_bandit::core::AlgorithmKind;
use micro_armed_bandit::smtsim::{
    config::SmtParams,
    controllers::{BanditController, ChoiController, StaticPgController},
    pipeline::SmtPipeline,
    policies::PgPolicy,
};
use micro_armed_bandit::workloads::smt;

fn mix(a: &str, b: &str) -> [smt::ThreadSpec; 2] {
    [
        smt::thread_by_name(a).expect("catalog thread"),
        smt::thread_by_name(b).expect("catalog thread"),
    ]
}

const COMMITS: u64 = 30_000;

#[test]
fn choi_beats_plain_icount_on_average() {
    // Over a handful of mixes, gating should not lose to no-gating.
    let mixes = [
        ("gcc", "lbm"),
        ("mcf", "exchange2"),
        ("lbm", "bwaves"),
        ("xz", "fotonik3d"),
    ];
    let mut choi_total = 0.0;
    let mut icount_total = 0.0;
    for (a, b) in mixes {
        let mut pipe = SmtPipeline::new(SmtParams::test_scale(), mix(a, b), 5);
        choi_total += pipe.run(Box::new(ChoiController::new()), COMMITS).sum_ipc();
        let mut pipe = SmtPipeline::new(SmtParams::test_scale(), mix(a, b), 5);
        icount_total += pipe
            .run(Box::new(StaticPgController::new(PgPolicy::ICOUNT)), COMMITS)
            .sum_ipc();
    }
    assert!(
        choi_total > icount_total * 0.95,
        "choi {choi_total:.3} vs icount {icount_total:.3}"
    );
}

#[test]
fn bandit_is_competitive_with_choi() {
    let mixes = [
        ("gcc", "lbm"),
        ("lbm", "mcf"),
        ("cactus", "lbm"),
        ("xz", "deepsjeng"),
    ];
    let mut bandit_total = 0.0;
    let mut choi_total = 0.0;
    for (a, b) in mixes {
        let mut pipe = SmtPipeline::new(SmtParams::test_scale(), mix(a, b), 9);
        let mut controller = BanditController::paper_default(9);
        bandit_total += pipe.run_with(&mut controller, COMMITS).sum_ipc();
        let mut pipe = SmtPipeline::new(SmtParams::test_scale(), mix(a, b), 9);
        choi_total += pipe.run(Box::new(ChoiController::new()), COMMITS).sum_ipc();
    }
    assert!(
        bandit_total > choi_total * 0.9,
        "bandit {bandit_total:.3} vs choi {choi_total:.3}"
    );
}

#[test]
fn all_64_policies_run() {
    for policy in PgPolicy::all() {
        let mut pipe = SmtPipeline::new(SmtParams::test_scale(), mix("gcc", "xz"), 1);
        let stats = pipe.run(Box::new(StaticPgController::new(policy)), 2_000);
        assert!(stats.sum_ipc() > 0.0, "{policy} produced zero IPC");
    }
}

#[test]
fn smt_stack_is_deterministic() {
    let run = || {
        let mut pipe = SmtPipeline::new(SmtParams::test_scale(), mix("lbm", "mcf"), 3);
        let mut controller = BanditController::paper_default(3);
        let stats = pipe.run_with(&mut controller, 10_000);
        (stats, controller.history().to_vec())
    };
    assert_eq!(run(), run());
}

#[test]
fn bandit_history_walks_round_robin_first() {
    use micro_armed_bandit::core::BanditConfig;
    let mut pipe = SmtPipeline::new(SmtParams::test_scale(), mix("gcc", "lbm"), 4);
    // Short steps so the whole round-robin phase fits in a small run.
    let config = BanditConfig::builder(6)
        .algorithm(AlgorithmKind::Ducb {
            gamma: 0.975,
            c: 0.01,
        })
        .seed(4)
        .build()
        .expect("valid config");
    let mut controller = BanditController::new(
        config,
        micro_armed_bandit::smtsim::policies::PgPolicy::bandit_arms().to_vec(),
        1,
        4,
    )
    .expect("matching arm count");
    pipe.run_with(&mut controller, 100_000);
    let h = controller.history();
    assert!(h.len() >= 6, "enough steps for the RR phase: {}", h.len());
    assert_eq!(&h[..6], &[0, 1, 2, 3, 4, 5]);
}

#[test]
fn rename_accounting_is_exhaustive() {
    let mut pipe = SmtPipeline::new(SmtParams::test_scale(), mix("bwaves", "omnetpp"), 6);
    let stats = pipe.run(Box::new(ChoiController::new()), 20_000);
    assert_eq!(stats.rename.total(), stats.cycles);
    assert!(stats.rename.running > 0);
}
