//! End-to-end telemetry replay test (requires `--features telemetry`).
//!
//! Runs a bandit-prefetched single-core simulation with the recorder
//! installed, exports the telemetry as JSON lines, and checks that the
//! exported event log *reconstructs* the run: per-arm `arm_pulled` counts
//! must equal the per-arm counts in the bandit's own selection history, and
//! the exported counters must agree with the simulator's `RunStats`.
#![cfg(feature = "telemetry")]

use mab_memsim::{config::SystemConfig, System};
use mab_prefetch::{shared::SharedPrefetcher, BanditL2};
use mab_workloads::suites;

const SEED: u64 = 11;
const INSTRUCTIONS: u64 = 150_000;

/// Extracts the unsigned integer following `"key":` on a JSONL line.
fn field_u64(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = line
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} field in: {line}"));
    line[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("bad {key} value in: {line}"))
}

#[test]
fn exported_event_log_replays_the_prefetch_run() {
    let rec = mab_telemetry::install(mab_telemetry::RecorderConfig::default());

    let mut bandit = BanditL2::paper_default(SEED);
    bandit.record_history();
    let handle = SharedPrefetcher::new(bandit);
    let mut system = System::single_core(SystemConfig::default());
    system.set_prefetcher(0, Box::new(handle.clone()));
    let app = suites::app_by_name("cactus").expect("catalog app");
    let stats = system.run(&mut app.trace(SEED), INSTRUCTIONS);

    let history = handle.with(|b| b.history().expect("history enabled").to_vec());
    let steps = handle.with(|b| b.agent().steps());
    assert!(
        history.len() >= 8,
        "run too short to exercise the bandit: {} selections",
        history.len()
    );

    let mut out = Vec::new();
    rec.export_jsonl(&mut out).expect("export");
    let text = String::from_utf8(out).expect("utf8");

    // Nothing may have been evicted, or the replay below would be partial.
    let meta = text.lines().next().expect("meta line");
    assert!(meta.contains("\"kind\":\"meta\""), "{meta}");
    assert_eq!(field_u64(meta, "events_dropped"), 0, "{meta}");

    // Replay: per-arm pull counts reconstructed from the exported events
    // must equal the per-arm counts in the bandit's selection history.
    let n_arms = history.iter().map(|&(_, arm)| arm).max().unwrap() + 1;
    let mut from_events = vec![0u64; n_arms];
    let mut pulls_in_log = 0u64;
    for line in text
        .lines()
        .filter(|l| l.contains("\"kind\":\"arm_pulled\""))
    {
        assert_eq!(field_u64(line, "agent"), SEED, "{line}");
        from_events[field_u64(line, "arm") as usize] += 1;
        pulls_in_log += 1;
    }
    let mut from_history = vec![0u64; n_arms];
    for &(_, arm) in &history {
        from_history[arm] += 1;
    }
    assert_eq!(from_events, from_history, "per-arm pull counts diverge");

    // Counter lines agree with the event log and the agent's final state:
    // every selection is one history entry, and all but the final pending
    // selection completed a reward step.
    assert_eq!(pulls_in_log, history.len() as u64);
    let counter = |stat: &str| {
        let line = text
            .lines()
            .find(|l| l.contains(&format!("\"stat\":\"{stat}\"")))
            .unwrap_or_else(|| panic!("no {stat} counter in export"));
        field_u64(line, "value")
    };
    assert_eq!(counter("arm_pulls"), history.len() as u64);
    assert_eq!(counter("rewards_observed"), steps);
    assert_eq!(steps, history.len() as u64 - 1);

    // Simulator counters agree with the run's own statistics.
    assert_eq!(counter("prefetch_issued"), stats.prefetch.issued);
    assert_eq!(counter("l2_demand_hit"), stats.l2.demand_hits);
    assert_eq!(counter("l2_demand_miss"), stats.l2.demand_misses);

    // The reward histogram saw exactly one observation per completed step.
    let hist = text
        .lines()
        .find(|l| l.contains("\"hist\":\"reward\""))
        .expect("reward histogram in export");
    assert_eq!(field_u64(hist, "count"), steps);

    // --- Decision trace replay -------------------------------------------
    // One DecisionRecord per selection, in history order, with every step's
    // delayed reward attributed (only the final pending selection stays
    // unattributed).
    let decisions = rec.trace().decisions();
    assert_eq!(rec.trace().dropped(), 0);
    assert_eq!(rec.trace().unattributed(), 0);
    assert_eq!(decisions.len(), history.len());
    let attributed = decisions
        .iter()
        .filter(|d| d.record.reward.is_finite())
        .count() as u64;
    assert_eq!(attributed, steps);
    for (d, &(_, arm)) in decisions.iter().zip(&history) {
        assert_eq!(d.record.chosen, arm, "trace arm diverges from history");
        assert_eq!(d.record.agent, SEED);
        // The probe covers the full arm set, not just the arms pulled so far.
        assert_eq!(
            d.record.arms.len(),
            mab_prefetch::composite::PAPER_ARMS.len()
        );
    }
    let cycles: Vec<u64> = decisions.iter().map(|d| d.record.cycle).collect();
    assert!(
        cycles.windows(2).all(|w| w[0] <= w[1]),
        "cycles not monotone"
    );
    assert!(cycles.last().copied().unwrap() > 0, "clock never published");

    // JSONL trace export round-trips the same decision count.
    let mut trace_out = Vec::new();
    mab_telemetry::trace::write_trace_jsonl(rec.trace(), &mut trace_out).expect("trace export");
    let trace_text = String::from_utf8(trace_out).expect("utf8");
    let meta_line = trace_text.lines().next().expect("trace_meta line");
    assert_eq!(
        field_u64(meta_line, "decisions_retained"),
        history.len() as u64
    );
    assert_eq!(
        trace_text
            .lines()
            .filter(|l| l.contains("\"kind\":\"decision\""))
            .count(),
        history.len()
    );

    // The Perfetto export renders one slice per decision plus the sampled
    // memsim occupancy counters.
    let mut perfetto = Vec::new();
    mab_telemetry::perfetto::write_trace_json(rec, &mut perfetto).expect("perfetto export");
    let perfetto = String::from_utf8(perfetto).expect("utf8");
    assert!(perfetto.contains("\"traceEvents\""));
    assert_eq!(
        perfetto.matches("\"ph\":\"X\"").count(),
        history.len(),
        "one duration slice per decision"
    );
    assert!(perfetto.contains("dram_backlog"), "occupancy track missing");
}
