//! Integration tests for the paper's §9 future-work extensions:
//! the hierarchical bandit and the classifier-augmented bandit.

use micro_armed_bandit::core::hierarchical::HyperBandit;
use micro_armed_bandit::core::AlgorithmKind;
use micro_armed_bandit::memsim::{config::SystemConfig, System};
use micro_armed_bandit::prefetch::catalog;
use micro_armed_bandit::prefetch::classified::ClassifiedBandit;
use micro_armed_bandit::workloads::suites;

#[test]
fn hyper_bandit_handles_fast_and_slow_phases() {
    // A fast-forgetting and a slow-forgetting DUCB under one arbiter: the
    // hierarchy must stay correct through both a long stationary phase and
    // rapid flips.
    let mut hyper = HyperBandit::new(
        3,
        vec![
            AlgorithmKind::Ducb {
                gamma: 0.85,
                c: 0.1,
            },
            AlgorithmKind::Ducb {
                gamma: 0.999,
                c: 0.1,
            },
        ],
        5,
    )
    .expect("valid configuration");
    // Stationary phase: arm 1 best.
    for _ in 0..600 {
        let arm = hyper.select_arm();
        hyper.observe_reward(if arm.index() == 1 { 1.0 } else { 0.2 });
    }
    assert_eq!(hyper.best_arm().index(), 1);
    // Abrupt change: arm 2 best.
    for _ in 0..600 {
        let arm = hyper.select_arm();
        hyper.observe_reward(if arm.index() == 2 { 1.0 } else { 0.2 });
    }
    assert_eq!(hyper.best_arm().index(), 2);
    assert!(
        hyper.storage_bytes() < 200,
        "still tiny: {}",
        hyper.storage_bytes()
    );
}

#[test]
fn classified_bandit_runs_the_full_memory_stack() {
    // soplex mixes region-regular and strided access; the classified bandit
    // must at least not lose badly to no prefetching.
    let app = suites::app_by_name("soplex").expect("catalog app");
    let base = {
        let mut sys = System::single_core(SystemConfig::default());
        sys.set_prefetcher(0, catalog::build_l2("none", 1));
        sys.run(&mut app.trace(1), 200_000).ipc()
    };
    let classified = {
        let mut sys = System::single_core(SystemConfig::default());
        sys.set_prefetcher(
            0,
            Box::new(ClassifiedBandit::paper_default(1).expect("valid")),
        );
        sys.run(&mut app.trace(1), 200_000).ipc()
    };
    assert!(
        classified > base * 0.9,
        "classified bandit: {base:.3} -> {classified:.3}"
    );
}

#[test]
fn classified_bandit_assigns_phases_to_both_classes() {
    // mcf alternates pointer-chase and strided phases, so both class
    // agents should get steps.
    let app = suites::app_by_name("mcf").expect("catalog app");
    let handle = micro_armed_bandit::prefetch::shared::SharedPrefetcher::new(
        ClassifiedBandit::paper_default(2).expect("valid"),
    );
    let mut sys = System::single_core(SystemConfig::default());
    sys.set_prefetcher(0, Box::new(handle.clone()));
    sys.run(&mut app.trace(2), 1_500_000);
    let steps = handle.with(|c| c.class_steps());
    assert!(
        steps[0] > 0 && steps[1] > 0,
        "both classes should see steps across mcf's phases: {steps:?}"
    );
}
