//! Deeper edge-case tests on the SMT pipeline and memory substrates.

use micro_armed_bandit::memsim::{config::SystemConfig, System};
use micro_armed_bandit::smtsim::{
    config::SmtParams,
    controllers::{EpochIpc, PgController, RewardMetric, StaticPgController},
    pipeline::SmtPipeline,
    policies::PgPolicy,
};
use micro_armed_bandit::workloads::{smt, suites, TraceRecord};

fn mix(a: &str, b: &str) -> [smt::ThreadSpec; 2] {
    [
        smt::thread_by_name(a).expect("catalog thread"),
        smt::thread_by_name(b).expect("catalog thread"),
    ]
}

#[test]
fn identical_threads_get_symmetric_service() {
    // Two copies of the same workload under ICount must end up with
    // near-identical IPCs (no systematic bias toward either context).
    let mut pipe = SmtPipeline::new(SmtParams::test_scale(), mix("gcc", "gcc"), 11);
    let stats = pipe.run(Box::new(StaticPgController::new(PgPolicy::ICOUNT)), 30_000);
    let ratio = stats.ipc(0) / stats.ipc(1);
    assert!(
        (0.9..=1.1).contains(&ratio),
        "symmetric threads diverged: {:.3} vs {:.3}",
        stats.ipc(0),
        stats.ipc(1)
    );
}

#[test]
fn tiny_commit_targets_terminate() {
    // Degenerate run lengths must not hang or panic.
    for commits in [1u64, 2, 7] {
        let mut pipe = SmtPipeline::new(SmtParams::test_scale(), mix("lbm", "mcf"), 1);
        let stats = pipe.run(Box::new(StaticPgController::new(PgPolicy::CHOI)), commits);
        assert!(stats.commits[0] >= commits && stats.commits[1] >= commits);
    }
}

#[test]
fn extreme_gating_shares_still_make_progress() {
    // A controller pinning thread 0 to the minimum share must not deadlock
    // thread 0 (gating only blocks fetch, never drains in-flight work).
    struct Starver;
    impl PgController for Starver {
        fn policy(&self) -> PgPolicy {
            "IC_1111".parse().expect("valid policy")
        }
        fn share(&self, thread: usize) -> f64 {
            if thread == 0 {
                0.1
            } else {
                0.9
            }
        }
        fn on_epoch(&mut self, _epoch: EpochIpc) {}
    }
    let mut pipe = SmtPipeline::new(SmtParams::test_scale(), mix("bwaves", "gcc"), 2);
    let stats = pipe.run(Box::new(Starver), 5_000);
    assert!(stats.commits[0] >= 5_000, "starved thread still finished");
    assert!(
        stats.ipc(1) > stats.ipc(0) * 0.9,
        "favored thread not slower"
    );
}

#[test]
fn reward_metric_changes_bandit_behaviour_end_to_end() {
    use micro_armed_bandit::experiments::smt_runs;
    // Same mix, same seed, different reward metrics: trajectories and/or
    // outcomes must differ (the reward actually reaches the agent).
    let run = |metric: RewardMetric| {
        let mut controller = smt_runs::scaled_bandit(
            micro_armed_bandit::core::AlgorithmKind::Ducb {
                gamma: 0.975,
                c: 0.01,
            },
            3,
        );
        controller.set_reward_metric(metric);
        let mut pipe = SmtPipeline::new(smt_runs::scaled_params(), mix("exchange2", "mcf"), 3);
        pipe.run_with(&mut controller, 40_000);
        controller.history().to_vec()
    };
    let throughput = run(RewardMetric::SumIpc);
    let fairness = run(RewardMetric::HarmonicWeighted {
        isolated: [2.0, 0.2],
    });
    assert_ne!(throughput, fairness, "metrics should steer different arms");
}

#[test]
fn memsim_handles_store_only_and_branch_only_streams() {
    // Degenerate instruction mixes must not wedge the memory system.
    let mut stores = (0u64..).map(|i| TraceRecord::store(0x400, (i % 512) * 64));
    let mut sys = System::single_core(SystemConfig::default());
    let stats = sys.run(&mut stores, 20_000);
    assert_eq!(stats.instructions, 20_000);
    assert!(stats.ipc() > 1.0, "stores retire off the critical path");

    let mut branches = (0u64..).map(|i| TraceRecord::branch(0x500 + (i % 32) * 4));
    let mut sys = System::single_core(SystemConfig::default());
    let stats = sys.run(&mut branches, 20_000);
    assert!(stats.ipc() > 3.0, "branch-only stream runs at commit width");
}

#[test]
fn alt_cache_hierarchy_helps_l2_sized_footprints() {
    // An app whose footprint fits in 1MB but not 256KB must gain from the
    // Fig. 11 hierarchy.
    let mut trace = (0u64..).map(|i| TraceRecord::load(0x400, (i % 8192) * 64)); // 512KB
    let base = {
        let mut sys = System::single_core(SystemConfig::default());
        sys.run(&mut trace, 120_000).ipc()
    };
    let mut trace = (0u64..).map(|i| TraceRecord::load(0x400, (i % 8192) * 64));
    let alt = {
        let mut sys = System::single_core(SystemConfig::alt_cache());
        sys.run(&mut trace, 120_000).ipc()
    };
    assert!(
        alt > base,
        "1MB L2 should help a 512KB loop: {base:.3} -> {alt:.3}"
    );
}

#[test]
fn four_core_heterogeneous_mix_runs() {
    // Different applications per core (the paper's heterogeneous mixes).
    let names = ["lbm", "mcf", "gcc", "cactus"];
    let mut sys = System::multi_core(SystemConfig::default(), 4);
    let mut traces: Vec<_> = names
        .iter()
        .enumerate()
        .map(|(i, n)| suites::app_by_name(n).unwrap().trace(30 + i as u64))
        .collect();
    let mut dyn_traces: Vec<&mut dyn Iterator<Item = TraceRecord>> = traces
        .iter_mut()
        .map(|t| t as &mut dyn Iterator<Item = TraceRecord>)
        .collect();
    let stats = sys.run_multi(&mut dyn_traces, 25_000);
    // The compute-bound app must beat the pointer chaser even under sharing.
    let ipc = |i: usize| stats[i].ipc();
    assert!(ipc(2) > ipc(1), "gcc {:.3} vs mcf {:.3}", ipc(2), ipc(1));
}
