//! Property-based tests on the core bandit invariants.

use micro_armed_bandit::core::{AlgorithmKind, ArmId, BanditAgent, BanditConfig};
use proptest::prelude::*;

/// Any of the built-in algorithms with valid hyperparameters.
fn algorithm_strategy() -> impl Strategy<Value = AlgorithmKind> {
    prop_oneof![
        (0.0..=1.0f64).prop_map(|epsilon| AlgorithmKind::EpsilonGreedy { epsilon }),
        (0.0..=2.0f64).prop_map(|c| AlgorithmKind::Ucb { c }),
        ((0.5..=1.0f64), (0.0..=2.0f64)).prop_map(|(gamma, c)| AlgorithmKind::Ducb {
            gamma: gamma.max(0.5),
            c
        }),
        Just(AlgorithmKind::Single),
        ((1u32..=50), (1usize..=8)).prop_map(|(exploit_len, window)| AlgorithmKind::Periodic {
            exploit_len,
            window
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Selected arms are always in range, for any algorithm and any reward
    /// stream.
    #[test]
    fn selected_arms_in_range(
        algorithm in algorithm_strategy(),
        arms in 1usize..12,
        seed in 0u64..1000,
        rewards in prop::collection::vec(0.0..10.0f64, 50..200),
    ) {
        let config = BanditConfig::builder(arms)
            .algorithm(algorithm)
            .seed(seed)
            .build()
            .expect("valid configuration");
        let mut agent = BanditAgent::new(config);
        for (i, &r) in rewards.iter().enumerate() {
            let arm = agent.select_arm();
            prop_assert!(arm.index() < arms, "step {i}: {arm}");
            agent.observe_reward(r);
        }
        prop_assert!(agent.best_arm().index() < arms);
    }

    /// `n_total` always equals the sum of the per-arm counts, under any
    /// algorithm (including DUCB's discounting).
    #[test]
    fn n_total_is_sum_of_counts(
        algorithm in algorithm_strategy(),
        arms in 1usize..8,
        seed in 0u64..1000,
        steps in 20usize..150,
    ) {
        let config = BanditConfig::builder(arms)
            .algorithm(algorithm)
            .seed(seed)
            .build()
            .expect("valid configuration");
        let mut agent = BanditAgent::new(config);
        for step in 0..steps {
            let arm = agent.select_arm();
            agent.observe_reward((step % 5) as f64 * 0.2 + arm.index() as f64 * 0.1);
            let tables = agent.tables();
            let sum: f64 = (0..arms).map(|i| tables.n(ArmId::new(i))).sum();
            prop_assert!(
                (tables.n_total() - sum).abs() < 1e-6,
                "step {step}: n_total {} vs sum {sum}",
                tables.n_total()
            );
        }
    }

    /// With positive rewards the initial round-robin normalizer equals the
    /// mean of the first `arms` rewards, and all stored rewards stay finite.
    #[test]
    fn normalizer_is_initial_mean(
        arms in 1usize..10,
        seed in 0u64..1000,
        rewards in prop::collection::vec(0.1..10.0f64, 10..40),
    ) {
        prop_assume!(rewards.len() >= arms);
        let config = BanditConfig::builder(arms).seed(seed).build().expect("valid");
        let mut agent = BanditAgent::new(config);
        for &r in &rewards {
            agent.select_arm();
            agent.observe_reward(r);
        }
        let expected: f64 = rewards[..arms].iter().sum::<f64>() / arms as f64;
        prop_assert!((agent.normalizer() - expected).abs() < 1e-9);
        let tables = agent.tables();
        for i in 0..arms {
            prop_assert!(tables.reward(ArmId::new(i)).is_finite());
        }
    }

    /// In a stationary environment with a unique best arm, UCB and DUCB end
    /// up ranking that arm on top.
    #[test]
    fn ucb_family_identifies_best_arm(
        c in 0.01..0.5f64,
        gamma in 0.95..1.0f64,
        best in 0usize..5,
        seed in 0u64..100,
    ) {
        for algorithm in [AlgorithmKind::Ucb { c }, AlgorithmKind::Ducb { gamma, c }] {
            let config = BanditConfig::builder(5)
                .algorithm(algorithm)
                .seed(seed)
                .build()
                .expect("valid");
            let mut agent = BanditAgent::new(config);
            for _ in 0..600 {
                let arm = agent.select_arm();
                let reward = if arm.index() == best { 1.0 } else { 0.2 };
                agent.observe_reward(reward);
            }
            prop_assert_eq!(agent.best_arm().index(), best);
        }
    }

    /// Agents with the same configuration and seed produce identical
    /// trajectories; the trajectory never depends on ambient state.
    #[test]
    fn trajectories_are_reproducible(
        algorithm in algorithm_strategy(),
        arms in 1usize..8,
        seed in 0u64..1000,
    ) {
        let run = || {
            let config = BanditConfig::builder(arms)
                .algorithm(algorithm)
                .rr_restart_prob(0.05)
                .seed(seed)
                .build()
                .expect("valid");
            let mut agent = BanditAgent::new(config);
            let mut picks = Vec::new();
            for i in 0..120u32 {
                let arm = agent.select_arm();
                picks.push(arm);
                agent.observe_reward((i % 7) as f64 * 0.3);
            }
            picks
        };
        prop_assert_eq!(run(), run());
    }
}
