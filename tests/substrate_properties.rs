//! Property-based tests on the simulator substrates.

use micro_armed_bandit::memsim::cache::{Cache, LookupResult, Mshr};
use micro_armed_bandit::memsim::config::CacheParams;
use micro_armed_bandit::memsim::config::CoreParams;
use micro_armed_bandit::memsim::core::CoreModel;
use micro_armed_bandit::memsim::dram::Dram;
use micro_armed_bandit::workloads::patterns::{Pattern, PointerChase};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A cache hit is always preceded by a fill of the same line, and the
    /// cache never reports more lines than its capacity.
    #[test]
    fn cache_hits_require_prior_fills(
        ops in prop::collection::vec((0u64..64, prop::bool::ANY), 1..300),
        ways in 1u32..8,
        sets_pow in 0u32..4,
    ) {
        let mut cache = Cache::new(CacheParams {
            capacity_bytes: 64 * ways as u64 * (1 << sets_pow),
            ways,
            latency: 1,
        });
        let mut filled = std::collections::HashSet::new();
        for (line, is_fill) in ops {
            if is_fill {
                cache.fill(line, false);
                filled.insert(line);
            } else if let LookupResult::Hit { .. } = cache.demand_lookup(line) {
                prop_assert!(filled.contains(&line), "hit on never-filled line {line}");
            }
        }
    }

    /// DRAM access latency is at least the unloaded minimum and completion
    /// order respects the single-channel serialization.
    #[test]
    fn dram_latency_bounds(
        arrivals in prop::collection::vec(0u64..10_000, 1..100),
        service in 1.0..50.0f64,
        latency in 10u32..200,
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let mut dram = Dram::new(service, latency);
        let min = dram.min_latency();
        let mut last_completion = 0u64;
        for t in sorted {
            let l = dram.access(t);
            prop_assert!(l >= min.saturating_sub(1), "latency {l} below minimum {min}");
            let completion = t + l;
            prop_assert!(completion + 1 >= last_completion, "bus order violated");
            last_completion = completion;
        }
    }

    /// The core model's cycle count is monotonic and the IPC never exceeds
    /// the commit width.
    #[test]
    fn core_ipc_bounded_by_commit_width(
        latencies in prop::collection::vec(1u32..300, 10..500),
        commit_width in 1u32..8,
    ) {
        let mut core = CoreModel::new(CoreParams {
            fetch_width: 8,
            commit_width,
            rob_size: 128,
            freq_mhz: 4000,
        });
        let mut last_cycles = 0;
        for l in latencies {
            core.advance(l);
            let c = core.cycles();
            prop_assert!(c >= last_cycles);
            last_cycles = c;
        }
        prop_assert!(core.ipc() <= commit_width as f64 + 1e-9);
    }

    /// The MSHR never yields a line it was not given, and drains everything
    /// by the far future.
    #[test]
    fn mshr_conserves_lines(
        entries in prop::collection::vec((0u64..100, 0u64..1000), 1..60),
    ) {
        let mut mshr = Mshr::new();
        let mut inserted = std::collections::HashSet::new();
        for (line, ready) in entries {
            if mshr.insert(line, ready, false) {
                inserted.insert(line);
            }
        }
        let drained: Vec<(u64, bool)> = mshr.drain_ready(u64::MAX);
        prop_assert_eq!(drained.len(), inserted.len());
        for (line, _) in drained {
            prop_assert!(inserted.contains(&line));
        }
        prop_assert!(mshr.is_empty());
    }

    /// The pointer-chase pattern is a permutation: within one footprint
    /// period every line appears exactly once.
    #[test]
    fn pointer_chase_is_a_permutation(
        footprint in 2u64..200,
        salt in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut p = PointerChase::new(0, footprint, salt);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..footprint {
            let line = p.next_line(&mut rng);
            prop_assert!(line < footprint, "line {line} outside footprint {footprint}");
            prop_assert!(seen.insert(line), "duplicate line {line} within a period");
        }
    }
}
