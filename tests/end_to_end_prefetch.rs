//! Cross-crate integration tests: workloads → memsim → prefetch → core.

use micro_armed_bandit::core::AlgorithmKind;
use micro_armed_bandit::memsim::{config::SystemConfig, System};
use micro_armed_bandit::prefetch::{catalog, shared::SharedPrefetcher, BanditL2};
use micro_armed_bandit::workloads::suites;

const INSTRUCTIONS: u64 = 300_000;

fn run(prefetcher: &str, app: &str, seed: u64) -> micro_armed_bandit::memsim::RunStats {
    let app = suites::app_by_name(app).expect("catalog app");
    let mut system = System::single_core(SystemConfig::default());
    system.set_prefetcher(0, catalog::build_l2(prefetcher, seed));
    system.run(&mut app.trace(seed), INSTRUCTIONS)
}

#[test]
fn bandit_beats_no_prefetching_on_streams() {
    let base = run("none", "lbm", 1).ipc();
    let bandit = run("bandit", "lbm", 1).ipc();
    assert!(
        bandit > base * 1.15,
        "bandit should clearly help streaming: {base:.3} -> {bandit:.3}"
    );
}

#[test]
fn bandit_does_no_harm_on_pointer_chasing() {
    let base = run("none", "omnetpp", 1).ipc();
    let bandit = run("bandit", "omnetpp", 1).ipc();
    assert!(
        bandit > base * 0.93,
        "bandit must not tank irregular apps: {base:.3} -> {bandit:.3}"
    );
}

#[test]
fn full_stack_is_deterministic() {
    let a = run("bandit", "cactus", 7);
    let b = run("bandit", "cactus", 7);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    let a = run("bandit", "cactus", 7).cycles;
    let b = run("bandit", "cactus", 8).cycles;
    assert_ne!(a, b);
}

#[test]
fn every_lineup_prefetcher_runs_every_suite_app() {
    // Smoke coverage: no panics, sane IPC, for a sample across suites.
    for app in [
        "milc",
        "xalancbmk",
        "streamcluster",
        "pagerank",
        "cassandra",
    ] {
        for pf in catalog::L2_LINEUP {
            let app_spec = suites::app_by_name(app).unwrap();
            let mut system = System::single_core(SystemConfig::default());
            system.set_prefetcher(0, catalog::build_l2(pf, 3));
            let stats = system.run(&mut app_spec.trace(3), 50_000);
            let ipc = stats.ipc();
            assert!(ipc > 0.01 && ipc < 8.0, "{app}/{pf}: ipc {ipc}");
        }
    }
}

#[test]
fn bandit_settles_near_the_best_static_arm() {
    // On a strongly strided app, DUCB should reach at least 85% of the best
    // static arm's IPC within a modest run.
    let app = suites::app_by_name("cactus").unwrap();
    let cfg = SystemConfig::default();
    let mut best = 0.0f64;
    for arm in 0..micro_armed_bandit::prefetch::PAPER_ARMS.len() {
        let mut system = System::single_core(cfg);
        system.set_prefetcher(
            0,
            Box::new(BanditL2::with_algorithm(AlgorithmKind::Static { arm }, 1)),
        );
        best = best.max(system.run(&mut app.trace(1), INSTRUCTIONS).ipc());
    }
    let bandit = run("bandit", "cactus", 1).ipc();
    assert!(
        bandit > best * 0.85,
        "bandit {bandit:.3} vs best static {best:.3}"
    );
}

#[test]
fn selection_history_matches_step_count() {
    let app = suites::app_by_name("libquantum").unwrap();
    let handle = SharedPrefetcher::new({
        let mut b = BanditL2::paper_default(2);
        b.record_history();
        b
    });
    let mut system = System::single_core(SystemConfig::default());
    system.set_prefetcher(0, Box::new(handle.clone()));
    let stats = system.run(&mut app.trace(2), INSTRUCTIONS);
    let history_len = handle.with(|b| b.history().map_or(0, <[(u64, usize)]>::len));
    let steps = stats.l2_demand_accesses() / 1000;
    // One initial selection plus one per completed 1000-access step.
    assert_eq!(history_len as u64, steps + 1);
}

#[test]
fn four_core_shared_llc_and_dram() {
    let app = suites::app_by_name("milc").unwrap();
    let mut system = System::multi_core(SystemConfig::default(), 4);
    for core in 0..4 {
        system.set_prefetcher(
            core,
            catalog::build_l2("bandit-multicore", 10 + core as u64),
        );
    }
    let mut traces: Vec<_> = (0..4).map(|i| app.trace(20 + i)).collect();
    let mut dyn_traces: Vec<&mut dyn Iterator<Item = micro_armed_bandit::workloads::TraceRecord>> =
        traces
            .iter_mut()
            .map(|t| t as &mut dyn Iterator<Item = micro_armed_bandit::workloads::TraceRecord>)
            .collect();
    let stats = system.run_multi(&mut dyn_traces, 60_000);
    assert_eq!(stats.len(), 4);
    for s in &stats {
        assert_eq!(s.instructions, 60_000);
        assert!(s.ipc() > 0.05);
    }
}

#[test]
fn bandwidth_sweep_orders_ipc() {
    let app = suites::app_by_name("fotonik3d").unwrap();
    let mut ipcs = Vec::new();
    for mtps in [150u64, 2400, 9600] {
        let mut system = System::single_core(SystemConfig::default().with_dram_mtps(mtps));
        system.set_prefetcher(0, catalog::build_l2("bandit", 1));
        ipcs.push(system.run(&mut app.trace(1), 150_000).ipc());
    }
    assert!(ipcs[0] < ipcs[1], "more bandwidth, more IPC: {ipcs:?}");
    assert!(ipcs[1] <= ipcs[2] * 1.02, "{ipcs:?}");
}
